"""Plain-text race report files (what a tool run leaves behind).

Real SWORD writes its offline results as report files next to the logs;
this module renders an :class:`~repro.offline.analyzer.AnalysisResult` the
same way: a header with the analysis statistics, then one block per race
with both access sites resolved to source locations.
"""

from __future__ import annotations

from pathlib import Path

from ..common.sourceloc import GLOBAL_PCS
from .analyzer import AnalysisResult

REPORT_NAME = "races.txt"


def render_report(result: AnalysisResult, *, title: str = "SWORD race report") -> str:
    """Render one analysis result as a report document."""
    stats = result.stats
    lines = [
        title,
        "=" * len(title),
        "",
        f"intervals analysed:        {stats.intervals}",
        f"concurrent interval pairs: {stats.concurrent_pairs}",
        f"interval trees built:      {stats.trees_built} "
        f"({stats.tree_nodes} nodes from {stats.events_read} events)",
        f"overlap candidates:        {stats.overlap_candidates} "
        f"({stats.ilp_solves} constraint solves)",
        f"analysis time:             {stats.total_seconds:.3f} s "
        f"(plan {stats.plan_seconds:.3f} / build {stats.build_seconds:.3f} "
        f"/ compare {stats.compare_seconds:.3f})",
        "",
        f"data races: {len(result.races)}",
    ]
    for i, race in enumerate(result.races, start=1):
        loc_a = GLOBAL_PCS.loc(race.pc_a)
        loc_b = GLOBAL_PCS.loc(race.pc_b)
        op_a = "write" if race.write_a else "read"
        op_b = "write" if race.write_b else "read"
        lines += [
            "",
            f"race #{i}: address {race.address:#x}",
            f"  {op_a:5s} at {loc_a} "
            f"(thread {race.gid_a}, region {race.pid_a}, interval {race.bid_a})",
            f"  {op_b:5s} at {loc_b} "
            f"(thread {race.gid_b}, region {race.pid_b}, interval {race.bid_b})",
        ]
    lines.append("")
    return "\n".join(lines)


def write_report(
    result: AnalysisResult, directory: str | Path, *, title: str = "SWORD race report"
) -> Path:
    """Write the report into a trace/output directory; returns its path."""
    path = Path(directory) / REPORT_NAME
    path.write_text(render_report(result, title=title))
    return path
