"""Brute-force race oracle over a recorded execution tape.

Ground truth for tests: given the full, globally ordered event tape of a
simulated run (:class:`~repro.omp.recording.RecordingTool`), enumerate every
pair of accesses from different threads, decide concurrency with the
barrier-interval judgment on their (runtime-computed) labels, and check the
race condition by expanding byte-address sets.  Quadratic and allocation
heavy — strictly for small test programs, where it must agree exactly with
the streaming interval-tree analyzer.
"""

from __future__ import annotations

from ..omp.mutexset import MutexSetTable
from ..omp.recording import RecordingTool
from ..osl.concurrency import concurrent_intervals
from .report import RaceSet, make_report


def oracle_races(
    tool: RecordingTool, mutexsets: MutexSetTable
) -> RaceSet:
    """All racing pc pairs of the recorded execution (exhaustive).

    Same-interval pairs in intervals containing explicit tasks are judged
    by the task-ordering graph (tasking extension) — which also enables
    same-thread races (executor/creator code vs a deferred task).
    """
    from ..tasking.graph import decode_point

    accesses = tool.accesses()
    graph = tool.task_graph
    tasky = {(t.pid, t.bid) for t in graph.tasks()}
    races = RaceSet()
    addr_sets = [frozenset(int(x) for x in e.access.addresses()) for e in accesses]
    for i in range(len(accesses)):
        ei = accesses[i]
        ai = ei.access
        for j in range(i + 1, len(accesses)):
            ej = accesses[j]
            aj = ej.access
            if not (ai.is_write or aj.is_write):
                continue
            if ai.is_atomic and aj.is_atomic:
                continue
            if (ai.pc, aj.pc) in races or (aj.pc, ai.pc) in races:
                continue
            if not mutexsets.disjoint(ai.msid, aj.msid):
                continue
            same_interval = ei.region == ej.region and ei.bid == ej.bid
            if same_interval and (ei.region, ei.bid) in tasky:
                ent_i, seq_i = decode_point(ai.task_point)
                ent_j, seq_j = decode_point(aj.task_point)
                if not graph.concurrent(
                    ent_i, seq_i, ei.gid, ent_j, seq_j, ej.gid
                ):
                    continue
            else:
                if ei.gid == ej.gid:
                    continue
                if not concurrent_intervals(ei.chain, ej.chain):
                    continue
            common = addr_sets[i] & addr_sets[j]
            if not common:
                continue
            races.add(
                make_report(
                    pc_a=ai.pc,
                    pc_b=aj.pc,
                    address=min(common),
                    write_a=ai.is_write,
                    write_b=aj.is_write,
                    gid_a=ei.gid,
                    gid_b=ej.gid,
                    pid_a=ei.region,
                    pid_b=ej.region,
                    bid_a=ei.bid,
                    bid_b=ej.bid,
                )
            )
    return races
