"""One options object for every analysis mode.

The serial, distributed, and streaming drivers historically grew their
own keyword sets (workers here, checkpointing there, tree-cache bounds in
a third place).  :class:`AnalysisOptions` unifies them: every driver and
the shared :class:`~repro.offline.engine.AnalysisEngine` consume this one
dataclass, and :mod:`repro.api` passes it through unchanged.

:class:`FastPathOptions` gates the pair-analysis fast path (digest
pruning, solver memoization, persistent result cache).  Everything is
on by default except the persistent cache, which writes to disk and is
therefore opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..common.config import OfflineConfig
from ..obs import Instrumentation


@dataclass(slots=True)
class PruningOptions:
    """How the engine uses frame-resident digests on compressed traces.

    The compressed-trace redesign: collection-time digests ride each
    chunk's meta row, so most interval pairs can be decided without
    inflating any payload bytes.  All combinations preserve
    canonical-witness determinism — only ``bytes_inflated`` changes.
    """

    #: Consume meta-row digests at all (off = always inflate).
    use_digests: bool = True
    #: Run the digest pre-filter *before* scheduling any inflation, so
    #: pruned pairs cost zero decompressed bytes.
    lazy_inflate: bool = True
    #: When meta digests are absent (v1 traces, digest-less rows), fall
    #: back to inflating and pruning on tree digests as before.
    fallback_inflate: bool = True
    #: Skip site pairs the trace's static verdict table proved race-free
    #: before digest pruning even looks at them.  Off, the engine solves
    #: those pairs dynamically (synthesised DEFINITE_RACE reports are
    #: still injected — they are data, not an optimisation).
    static_skip: bool = True

    def validate(self) -> None:  # symmetry with the sibling options
        return None


@dataclass(slots=True)
class FastPathOptions:
    """Toggles for the pair-analysis fast path.

    All three accelerations preserve canonical-witness determinism: the
    analysis result is byte-identical with the fast path on or off.
    """

    #: Master switch; False restores the naive path exactly.
    enabled: bool = True
    #: Prune pairs whose access digests prove no shared racy byte.
    digest_pruning: bool = True
    #: Memoize Diophantine solves on the translated constraint shape.
    solver_memo: bool = True
    solver_memo_capacity: int = 4096
    #: Persist per-interval trees and pair verdicts keyed by trace
    #: content hashes (opt-in: writes under the trace directory, or
    #: ``cache_dir`` when set).  Only engaged for closed traces.
    result_cache: bool = False
    cache_dir: Optional[str] = None

    def validate(self) -> None:
        if self.solver_memo_capacity < 1:
            raise ValueError("solver_memo_capacity must be >= 1")

    @property
    def pruning_active(self) -> bool:
        return self.enabled and self.digest_pruning

    @property
    def memo_active(self) -> bool:
        return self.enabled and self.solver_memo

    @property
    def cache_active(self) -> bool:
        return self.enabled and self.result_cache


@dataclass(slots=True)
class AnalysisOptions:
    """Every knob of the offline analysis, for all three modes.

    Mode-specific fields are simply ignored where they do not apply
    (``workers`` by the serial driver, checkpointing by the post-mortem
    drivers) so one object can travel through :mod:`repro.api`
    unchanged.
    """

    # Engine / all modes.
    chunk_events: int = 65536
    use_ilp_crosscheck: bool = False
    tree_cache_capacity: int = 64
    #: ``"strict"`` fails fast on any trace defect; ``"salvage"``
    #: analyses whatever a crashed run left behind and attaches an
    #: :class:`~repro.sword.integrity.IntegrityReport` to the result.
    integrity: str = "strict"
    fastpath: FastPathOptions = field(default_factory=FastPathOptions)
    #: Compressed-trace pruning behaviour (meta-digest pre-filter,
    #: lazy inflation, tree-digest fallback).
    pruning: PruningOptions = field(default_factory=PruningOptions)
    #: Instrumentation bundle; None means the ambient bundle.
    obs: Optional[Instrumentation] = None

    # Distributed mode.
    workers: int = 1

    # Streaming mode.
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 32
    max_pairs: Optional[int] = None

    def validate(self) -> None:
        self.offline_config()  # OfflineConfig.validate covers the shared knobs
        if self.tree_cache_capacity < 1:
            raise ValueError("tree_cache_capacity must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.integrity not in ("strict", "salvage"):
            raise ValueError(
                f"integrity must be 'strict' or 'salvage', "
                f"got {self.integrity!r}"
            )
        self.fastpath.validate()
        self.pruning.validate()

    def offline_config(self) -> OfflineConfig:
        """The legacy config equivalent (validated)."""
        config = OfflineConfig(
            chunk_events=self.chunk_events,
            workers=self.workers,
            use_ilp_crosscheck=self.use_ilp_crosscheck,
        )
        config.validate()
        return config

    def copy(self, **overrides) -> "AnalysisOptions":
        return replace(self, **overrides)

    @classmethod
    def from_config(
        cls,
        config: OfflineConfig | None,
        *,
        obs: Optional[Instrumentation] = None,
        **overrides,
    ) -> "AnalysisOptions":
        """Lift a legacy :class:`OfflineConfig` (or None) into options."""
        if config is None:
            return cls(obs=obs, **overrides)
        return cls(
            chunk_events=config.chunk_events,
            workers=config.workers,
            use_ilp_crosscheck=config.use_ilp_crosscheck,
            obs=obs,
            **overrides,
        )
