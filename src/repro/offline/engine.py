"""The shared race-analysis engine (tree build / tree compare / ILP core).

One implementation serves all three analysis modes:

* **post-mortem** — :class:`~repro.offline.analyzer.OfflineAnalyzer` walks a
  complete pair plan over a closed trace directory;
* **distributed** — :class:`~repro.offline.parallel.ParallelOfflineAnalyzer`
  workers each drive an engine over their shard of the plan;
* **streaming** — :class:`~repro.stream.analyzer.StreamingAnalyzer` feeds the
  engine interval pairs while the traced program is still running.

The engine is agnostic about where its inputs come from: it only needs a
*trace source* — any object with ``reader(gid)``, ``mutexsets``, and
``task_graph`` (both :class:`~repro.sword.reader.TraceDir` and the streaming
layer's live source qualify).

Witness determinism.  Race *identities* are pc pairs; the report carries one
witnessing occurrence.  Which interval pair is analyzed first differs
between the serial, distributed, and streaming drivers, so the engine
deduplicates per *comparison* only and lets :class:`~repro.offline.report.
RaceSet` keep the canonical (smallest) witness — making the final
``RaceSet`` byte-identical across all three modes regardless of pair order.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

from ..common.config import OfflineConfig
from ..ilp.bruteforce import bruteforce_overlap
from ..ilp.memo import SolverMemo
from ..ilp.overlap import constraint_of, intervals_share_address
from ..itree.builder import TreeBuilder
from ..itree.digest import TreeDigest, digests_may_race
from ..itree.tree import IntervalTree
from ..obs import (
    COUNT_BUCKETS,
    SECONDS_BUCKETS,
    Instrumentation,
    get_obs,
)
from ..omp.mutexset import MutexSetTable
from ..sword.digest import FrameDigest, fold_digests
from ..sword.integrity import IntegrityReport
from .cache import ResultCache
from .intervals import IntervalData
from .options import AnalysisOptions
from .report import RaceSet, make_report


@dataclass(slots=True)
class AnalysisStats:
    """Where the offline time went (Table III's OA column breakdown)."""

    intervals: int = 0
    concurrent_pairs: int = 0
    trees_built: int = 0
    bulk_tree_builds: int = 0
    tree_nodes: int = 0
    events_read: int = 0
    overlap_candidates: int = 0
    ilp_solves: int = 0
    races_found: int = 0
    pairs_pruned: int = 0
    solver_memo_hits: int = 0
    solver_memo_misses: int = 0
    pair_cache_hits: int = 0
    tree_cache_disk_hits: int = 0
    #: Uncompressed bytes actually decompressed (the lazy-inflation
    #: claim: scales with races found, not with trace size).
    bytes_inflated: int = 0
    #: Chunks decided from their meta-row digests alone (never inflated).
    frames_pruned: int = 0
    #: Chunks whose payload was inflated for a tree build.
    frames_inflated: int = 0
    #: Static pre-screening (trace-level constants from the verdict
    #: table, plus this analysis' own pair skips).
    sites_proven_free: int = 0
    sites_definite_race: int = 0
    events_elided: int = 0
    site_pairs_skipped: int = 0
    plan_seconds: float = 0.0
    build_seconds: float = 0.0
    compare_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.plan_seconds + self.build_seconds + self.compare_seconds

    @property
    def events_per_second(self) -> float:
        """Offline throughput: trace events consumed per analysis second."""
        total = self.total_seconds
        return self.events_read / total if total > 0 else 0.0

    def to_json(self) -> dict:
        """Machine-readable stats (the shared report schema)."""
        return {
            "intervals": self.intervals,
            "concurrent_pairs": self.concurrent_pairs,
            "trees_built": self.trees_built,
            "bulk_tree_builds": self.bulk_tree_builds,
            "tree_nodes": self.tree_nodes,
            "events_read": self.events_read,
            "overlap_candidates": self.overlap_candidates,
            "ilp_solves": self.ilp_solves,
            "races_found": self.races_found,
            "pairs_pruned": self.pairs_pruned,
            "solver_memo_hits": self.solver_memo_hits,
            "solver_memo_misses": self.solver_memo_misses,
            "pair_cache_hits": self.pair_cache_hits,
            "tree_cache_disk_hits": self.tree_cache_disk_hits,
            "bytes_inflated": self.bytes_inflated,
            "frames_pruned": self.frames_pruned,
            "frames_inflated": self.frames_inflated,
            "sites_proven_free": self.sites_proven_free,
            "sites_definite_race": self.sites_definite_race,
            "events_elided": self.events_elided,
            "site_pairs_skipped": self.site_pairs_skipped,
            "plan_seconds": self.plan_seconds,
            "build_seconds": self.build_seconds,
            "compare_seconds": self.compare_seconds,
            "total_seconds": self.total_seconds,
            "events_per_second": self.events_per_second,
        }


@dataclass(slots=True)
class AnalysisResult:
    """Races plus phase statistics for one trace.

    ``integrity`` is populated by salvage-mode analysis (the ledger of
    what a damaged trace lost); strict runs leave it None.
    """

    races: RaceSet
    stats: AnalysisStats
    integrity: IntegrityReport | None = None

    @property
    def race_count(self) -> int:
        return len(self.races)

    def to_json(self) -> dict:
        """Machine-readable result (races + stats, the shared schema).

        The ``integrity`` key is additive: absent for strict runs, so
        existing consumers of the schema are unaffected.
        """
        payload = {"races": self.races.to_json(), "stats": self.stats.to_json()}
        if self.integrity is not None:
            payload["integrity"] = self.integrity.to_json()
        return payload


class TreeCache:
    """Bounded LRU of built interval trees keyed by interval identity."""

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, capacity)
        self._cache: OrderedDict = OrderedDict()

    def get(self, key):
        tree = self._cache.get(key)
        if tree is not None:
            self._cache.move_to_end(key)
        return tree

    def put(self, key, tree) -> None:
        self._cache[key] = tree
        self._cache.move_to_end(key)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    def invalidate(self, key) -> None:
        self._cache.pop(key, None)

    def __len__(self) -> int:
        return len(self._cache)


def check_node_pair(
    a,
    b,
    mutexsets: MutexSetTable,
    *,
    crosscheck: bool = False,
    memo: SolverMemo | None = None,
):
    """Apply the full race condition to two tree nodes' intervals.

    Returns a witness address or None.  Conditions (paper §III-B): at least
    one write, not both atomic, disjoint mutex sets, and a shared byte
    address under the strided-interval constraints.  With ``memo`` the
    overlap check is served through the solver memo (identical results,
    repeated constraint shapes solved once).
    """
    if not (a.is_write or b.is_write):
        return None
    if a.is_atomic and b.is_atomic:
        return None
    if not mutexsets.disjoint(a.msid, b.msid):
        return None
    if memo is not None:
        result = memo.share_address(a, b)
    else:
        result = intervals_share_address(a, b)
    if crosscheck:
        brute = bruteforce_overlap(constraint_of(a), constraint_of(b))
        if (result is None) != (brute is None):
            raise AssertionError(
                f"ILP/bruteforce disagreement on {a} vs {b}"
            )
    return None if result is None else result.address


class AnalysisEngine:
    """Tree construction and pair comparison over one trace source.

    ``source`` provides ``reader(gid)`` plus ``mutexsets`` / ``task_graph``
    attributes; the engine owns the readers it opens and the bounded tree
    cache, and accumulates :class:`AnalysisStats` across calls.
    """

    def __init__(
        self,
        source,
        config: OfflineConfig | None = None,
        *,
        options: AnalysisOptions | None = None,
        tree_cache_capacity: int = 64,
        obs: Instrumentation | None = None,
    ) -> None:
        self.source = source
        if options is None:
            options = AnalysisOptions.from_config(
                config, tree_cache_capacity=tree_cache_capacity
            )
        options.validate()
        self.options = options
        self.config = options.offline_config()
        self.obs = obs or options.obs or get_obs()
        self.stats = AnalysisStats()
        self._tree_cache = TreeCache(capacity=options.tree_cache_capacity)
        self._readers: dict[int, object] = {}
        fast = options.fastpath
        self._memo = (
            SolverMemo(fast.solver_memo_capacity) if fast.memo_active else None
        )
        self._prune = fast.pruning_active
        pruning = options.pruning
        #: Meta-digest pre-filter: decide pairs from the frame-resident
        #: digests *before* scheduling any inflation.
        self._lazy = (
            self._prune and pruning.use_digests and pruning.lazy_inflate
        )
        #: When meta digests are absent, keep pruning on tree digests
        #: (which costs one inflation per interval) as before.
        self._fallback = pruning.fallback_inflate
        #: pid -> proven-free pcs from the trace's static verdict table;
        #: pairs touching one are skipped before digest pruning.  Empty
        #: when the trace carries no table or static_skip is off.
        self._static_free: dict[int, frozenset[int]] = {}
        if pruning.static_skip:
            table = getattr(source, "static_verdicts", None)
            if table is not None:
                self._static_free = table.proven_free_by_pid()
        # Digests survive LRU eviction of their trees (they are tiny).
        self._digests: dict[object, TreeDigest] = {}
        self._meta_digests: dict[object, FrameDigest | None] = {}
        self._inflated_seen: dict[int, int] = {}
        self._result_cache = self._attach_result_cache(fast)
        registry = self.obs.registry
        self._m_trees = registry.counter("offline.trees_built")
        self._m_bulk_builds = registry.counter(
            "offline.bulk_tree_builds", "trees constructed via build_from_sorted"
        )
        self._m_cache_hits = registry.counter("offline.tree_cache_hits")
        self._m_events_read = registry.counter("offline.events_read")
        self._m_candidates = registry.counter("offline.overlap_candidates")
        self._m_ilp = registry.counter("offline.ilp_solves")
        self._m_races = registry.gauge("offline.races")
        self._m_build_seconds = registry.histogram(
            "offline.tree_build_seconds", "per-interval tree construction",
            buckets=SECONDS_BUCKETS,
        )
        self._m_compare_seconds = registry.histogram(
            "offline.pair_compare_seconds", "per-pair tree comparison",
            buckets=SECONDS_BUCKETS,
        )
        self._m_tree_nodes = registry.histogram(
            "offline.tree_nodes", "summarised nodes per built tree",
            buckets=COUNT_BUCKETS,
        )
        self._m_pruned = registry.counter(
            "offline.pairs_pruned", "pairs dismissed by access digests"
        )
        self._m_site_pairs_skipped = registry.counter(
            "offline.site_pairs_skipped",
            "site pairs skipped on static proven-free verdicts",
        )
        self._m_bytes_inflated = registry.counter(
            "offline.bytes_inflated", "uncompressed bytes decompressed"
        )
        self._m_frames_pruned = registry.counter(
            "offline.frames_pruned", "chunks decided without inflation"
        )
        self._m_frames_inflated = registry.counter(
            "offline.frames_inflated", "chunks inflated for tree builds"
        )
        self._m_memo_hits = registry.counter(
            "offline.solver_memo_hits", "Diophantine solves served memoized"
        )
        self._m_memo_misses = registry.counter(
            "offline.solver_memo_misses", "Diophantine solves computed"
        )
        self._m_pair_cache_hits = registry.counter(
            "offline.pair_cache_hits", "pair verdicts replayed from cache"
        )
        self._m_tree_disk_hits = registry.counter(
            "offline.tree_cache_disk_hits", "trees reloaded from cache"
        )
        self._m_pair_cache_rate = registry.gauge(
            "offline.pair_cache_hit_rate", "persistent pair-cache hit rate"
        )
        self._pair_cache_lookups = 0

    def _attach_result_cache(self, fast) -> ResultCache | None:
        """Persistent caching for closed traces only.

        A live streaming source's files are still growing — content
        hashes would be meaningless — so the cache stays off there; the
        replay path (closed trace) re-enables it.
        """
        if not fast.cache_active:
            return None
        if bool(getattr(self.source, "live", False)):
            return None
        path = getattr(self.source, "path", None)
        if path is None:
            path = getattr(self.source, "directory", None)
        if path is None:
            return None
        return ResultCache(path, fast.cache_dir)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release every reader this engine opened."""
        self._sync_inflated()
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()
        # A reopened reader restarts its counter at zero.
        self._inflated_seen.clear()

    def _sync_inflated(self) -> None:
        """Fold reader decompression counters into the stats (idempotent)."""
        for gid, reader in self._readers.items():
            total = int(getattr(reader, "bytes_inflated", 0))
            prev = self._inflated_seen.get(gid, 0)
            if total > prev:
                self._inflated_seen[gid] = total
                self.stats.bytes_inflated += total - prev
                self._m_bytes_inflated.inc(total - prev)

    def __enter__(self) -> "AnalysisEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- tree construction -------------------------------------------------------

    def _reader(self, gid: int):
        reader = self._readers.get(gid)
        if reader is None:
            reader = self.source.reader(gid)
            self._readers[gid] = reader
        return reader

    def digest_of(self, interval: IntervalData) -> TreeDigest:
        """The interval's access digest (building its tree if needed)."""
        digest = self._digests.get(interval.key)
        if digest is None:
            tree = self.build_tree(interval)
            digest = self._digests.get(interval.key)
            if digest is None:
                digest = TreeDigest.of_tree(tree)
                self._digests[interval.key] = digest
        return digest

    def _interval_digest(self, interval: IntervalData) -> FrameDigest | None:
        """Fold the interval's frame-resident digests (no inflation).

        None when any chunk lacks a meta-row digest (v1 traces, rows from
        a newer digest version, sources that do not carry digests) — the
        caller falls back to inflation.
        """
        key = interval.key
        if key in self._meta_digests:
            return self._meta_digests[key]
        digests = getattr(interval, "digests", None)
        folded = None
        if digests is not None and len(digests) == len(interval.chunks):
            folded = fold_digests(digests)
        self._meta_digests[key] = folded
        return folded

    def build_tree(self, interval: IntervalData) -> IntervalTree:
        """Stream one interval's chunks into a summarised tree (cached)."""
        key = interval.key
        cached = self._tree_cache.get(key)
        if cached is not None:
            self._m_cache_hits.inc()
            return cached
        if self._result_cache is not None:
            loaded = self._result_cache.load_tree(interval)
            if loaded is not None:
                tree, digest, _events = loaded
                self.stats.tree_cache_disk_hits += 1
                self._m_tree_disk_hits.inc()
                self._digests[key] = digest
                self._tree_cache.put(key, tree)
                return tree
        t0 = time.perf_counter()
        with self.obs.tracer.span(
            "tree-build", category="offline", gid=key.gid,
            pid=key.pid, bid=key.bid,
        ):
            builder = TreeBuilder()
            reader = self._reader(key.gid)
            for begin, size in interval.chunks:
                view = reader.frame_at(begin, size)
                for records in view.iter_events():
                    # Re-chunk to the configured streaming granularity.
                    step = self.config.chunk_events
                    for lo in range(0, records.shape[0], step):
                        builder.add_records(records[lo : lo + step])
            tree = builder.finish()
        elapsed = time.perf_counter() - t0
        self.stats.frames_inflated += len(interval.chunks)
        self._m_frames_inflated.inc(len(interval.chunks))
        self._sync_inflated()
        self.stats.trees_built += 1
        self.stats.tree_nodes += len(tree)
        self.stats.events_read += builder.events_in
        self.stats.build_seconds += elapsed
        self._m_trees.inc()
        if builder.bulk_built:
            self.stats.bulk_tree_builds += 1
            self._m_bulk_builds.inc()
        self._m_tree_nodes.observe(len(tree))
        self._m_events_read.inc(builder.events_in)
        self._m_build_seconds.observe(elapsed)
        if self._prune or self._result_cache is not None:
            digest = TreeDigest.of_tree(tree)
            self._digests[key] = digest
            if self._result_cache is not None:
                self._result_cache.store_tree(
                    interval, tree, digest, builder.events_in
                )
        self._tree_cache.put(key, tree)
        return tree

    # -- pair comparison ------------------------------------------------------------

    def compare_trees(
        self,
        tree_a: IntervalTree,
        tree_b: IntervalTree,
        ia: IntervalData,
        ib: IntervalData,
        races: RaceSet,
        on_race=None,
        sink: list | None = None,
    ) -> None:
        """Probe every node of one tree against the other.

        For intervals carrying explicit tasks (tasking extension), every
        candidate node pair is additionally gated by the task-ordering
        judgment — including same-thread pairs, which is why such
        intervals are also compared against themselves.

        The pair is oriented canonically (by interval identity, not by
        which argument the caller passed first): within one comparison
        the first witness found per pc pair wins, so the probe order must
        be a function of the pair alone for the serial, distributed, and
        streaming drivers to select identical witnesses.

        ``on_race(report)`` is invoked for every pc pair that is new to
        ``races`` (the streaming mode's live feed).  ``sink``, when given,
        collects every report this comparison generated — the result
        cache stores that list so a later run can replay the comparison
        without the trees.
        """
        from ..tasking.graph import decode_point

        key_a = (ia.key.gid, ia.key.pid, ia.key.bid)
        key_b = (ib.key.gid, ib.key.pid, ib.key.bid)
        if key_b < key_a:
            tree_a, tree_b = tree_b, tree_a
            ia, ib = ib, ia
        mutexsets = self.source.mutexsets
        graph = self.source.task_graph
        use_tasks = (
            len(graph) > 0
            and (ia.key.pid, ia.key.bid) == (ib.key.pid, ib.key.bid)
            and any(
                t.pid == ia.key.pid and t.bid == ia.key.bid
                for t in graph.tasks()
            )
        )
        # Per-comparison dedup only: a site pair repeating across *this*
        # pair's nodes is solved once, but other interval pairs still get
        # to contribute their own witness so the canonical-witness merge in
        # RaceSet stays independent of pair order across analysis modes.
        seen_here: set[tuple[int, int]] = set()
        # Statically proven-free pcs apply only within one region
        # instance: a pc's verdict says nothing about other regions.
        static_free = (
            self._static_free.get(ia.key.pid)
            if self._static_free and ia.key.pid == ib.key.pid
            else None
        )
        for node in tree_a:
            si = node.interval
            for hit in tree_b.iter_overlaps(si.low, si.high):
                other = hit.interval
                self.stats.overlap_candidates += 1
                if use_tasks:
                    ent_a, seq_a = decode_point(si.point)
                    ent_b, seq_b = decode_point(other.point)
                    if not graph.concurrent(
                        ent_a, seq_a, ia.key.gid, ent_b, seq_b, ib.key.gid
                    ):
                        continue
                pair_key = (
                    (si.pc, other.pc) if si.pc <= other.pc else (other.pc, si.pc)
                )
                if pair_key in seen_here:
                    continue  # this comparison already solved the site pair
                if static_free is not None and (
                    si.pc in static_free or other.pc in static_free
                ):
                    # The verdict table proved this site disjoint from
                    # every site of its region; no solve needed.
                    seen_here.add(pair_key)
                    self.stats.site_pairs_skipped += 1
                    self._m_site_pairs_skipped.inc()
                    continue
                self.stats.ilp_solves += 1
                address = check_node_pair(
                    si,
                    other,
                    mutexsets,
                    crosscheck=self.config.use_ilp_crosscheck,
                    memo=self._memo,
                )
                if address is None:
                    continue
                seen_here.add(pair_key)
                report = make_report(
                    pc_a=si.pc,
                    pc_b=other.pc,
                    address=address,
                    write_a=si.is_write,
                    write_b=other.is_write,
                    gid_a=ia.key.gid,
                    gid_b=ib.key.gid,
                    pid_a=ia.key.pid,
                    pid_b=ib.key.pid,
                    bid_a=ia.key.bid,
                    bid_b=ib.key.bid,
                )
                if sink is not None:
                    sink.append(report)
                if races.add(report) and on_race is not None:
                    on_race(races.get(report.key))
                self.stats.races_found = len(races)

    def _replay_reports(self, reports, races: RaceSet, on_race) -> None:
        """Feed cached reports through the same add/notify path a live
        comparison uses — order-independent by RaceSet's canonical merge."""
        for report in reports:
            if races.add(report) and on_race is not None:
                on_race(races.get(report.key))
        self.stats.races_found = len(races)
        self._m_races.set(len(races))

    def apply_static_verdicts(
        self, races: RaceSet, on_race=None, *, table=None
    ) -> None:
        """Fold the trace's static verdict table into one result.

        Copies the trace-level counts into the stats and injects the
        synthesised DEFINITE_RACE reports through the same add/notify
        path live comparisons use — RaceSet's canonical merge makes the
        injection order-independent.  Injection is unconditional when a
        table exists (elided sites produced no events, so dropping the
        reports would lose races); only the pair *skip* is an opt-out.
        ``table`` overrides the source's (the streaming driver captures
        the live producer's table at trace begin).
        """
        if table is None:
            table = getattr(self.source, "static_verdicts", None)
        if table is None:
            return
        self.stats.sites_proven_free = table.sites_proven_free
        self.stats.sites_definite_race = table.sites_definite_race
        self.stats.events_elided = int(table.events_elided)
        self._replay_reports(table.race_reports(), races, on_race)

    def analyze_pair(
        self,
        ia: IntervalData,
        ib: IntervalData,
        races: RaceSet,
        on_race=None,
    ) -> None:
        """Compare one interval pair (the unit of scheduling).

        Fast path, in cost order: (1) a persistent pair-verdict hit
        replays the cached reports without touching any tree; (2) the
        frame-resident meta-row digests prove the pair cannot race and it
        is pruned *before any payload byte is decompressed*; (3) when
        meta digests are absent, the tree digests (one inflation per
        interval) prune the comparison as before; (4) the trees are
        compared with the memoized solver.  Every path produces the
        identical contribution to ``races`` (the naive path's reports,
        exactly).
        """
        if self._result_cache is not None:
            self._pair_cache_lookups += 1
            cached = self._result_cache.load_pair(ia, ib)
            if cached is not None:
                self.stats.pair_cache_hits += 1
                self._m_pair_cache_hits.inc()
                self._m_pair_cache_rate.set(
                    self._result_cache.pair_hits / self._pair_cache_lookups
                )
                self._replay_reports(cached, races, on_race)
                return
            self._m_pair_cache_rate.set(
                self._result_cache.pair_hits / self._pair_cache_lookups
            )
        if self._lazy:
            da = self._interval_digest(ia)
            db = self._interval_digest(ib)
            if da is not None and db is not None and not digests_may_race(da, db):
                frames = len(ia.chunks) + len(ib.chunks)
                self.stats.pairs_pruned += 1
                self.stats.frames_pruned += frames
                self._m_pruned.inc()
                self._m_frames_pruned.inc(frames)
                if self._result_cache is not None:
                    self._result_cache.store_pair(ia, ib, [])
                return
        if (
            self._prune
            and self._fallback
            and not digests_may_race(self.digest_of(ia), self.digest_of(ib))
        ):
            self.stats.pairs_pruned += 1
            self._m_pruned.inc()
            if self._result_cache is not None:
                self._result_cache.store_pair(ia, ib, [])
            return
        tree_a = self.build_tree(ia)
        tree_b = self.build_tree(ib)
        candidates0 = self.stats.overlap_candidates
        solves0 = self.stats.ilp_solves
        memo_h0 = self._memo.hits if self._memo is not None else 0
        memo_m0 = self._memo.misses if self._memo is not None else 0
        sink: list | None = [] if self._result_cache is not None else None
        t0 = time.perf_counter()
        with self.obs.tracer.span("pair-compare", category="offline"):
            self.compare_trees(
                tree_a, tree_b, ia, ib, races, on_race=on_race, sink=sink
            )
        elapsed = time.perf_counter() - t0
        self.stats.compare_seconds += elapsed
        # Candidate/solve counters mirror at pair grain so the comparison
        # inner loop stays untouched.
        self._m_candidates.inc(self.stats.overlap_candidates - candidates0)
        self._m_ilp.inc(self.stats.ilp_solves - solves0)
        if self._memo is not None:
            dh = self._memo.hits - memo_h0
            dm = self._memo.misses - memo_m0
            self.stats.solver_memo_hits += dh
            self.stats.solver_memo_misses += dm
            self._m_memo_hits.inc(dh)
            self._m_memo_misses.inc(dm)
        self._m_compare_seconds.observe(elapsed)
        self._m_races.set(len(races))
        self._sync_inflated()
        if self._result_cache is not None:
            self._result_cache.store_pair(ia, ib, sink)
