"""Race reports and their deduplication.

Like the real tools, races are *counted* by distinct source-location pairs
(program-counter pairs), not by dynamic occurrence: one racy line pair in a
loop is one reported race no matter how many iterations trip it.

The witness kept per pc pair is *canonical*: when several interval pairs
contribute a witness for the same site pair, the smallest report (by field
tuple) wins.  This makes the final :class:`RaceSet` independent of the
order in which interval pairs were analyzed, so the serial, distributed,
and streaming analyzers produce byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..common.sourceloc import GLOBAL_PCS


@dataclass(frozen=True, slots=True)
class RaceReport:
    """One detected data race between two access sites.

    ``pc_a``/``pc_b`` are normalised so ``pc_a <= pc_b`` (the dedup key);
    the remaining fields describe the first witnessing occurrence.
    """

    pc_a: int
    pc_b: int
    address: int
    write_a: bool
    write_b: bool
    gid_a: int
    gid_b: int
    pid_a: int
    pid_b: int
    bid_a: int
    bid_b: int

    @property
    def key(self) -> tuple[int, int]:
        return (self.pc_a, self.pc_b)

    def sort_key(self) -> tuple:
        """Total order over reports (canonical-witness selection)."""
        return (
            self.pc_a, self.pc_b, self.address, self.write_a, self.write_b,
            self.gid_a, self.gid_b, self.pid_a, self.pid_b,
            self.bid_a, self.bid_b,
        )

    def to_json(self) -> dict:
        """Machine-readable report (the shared schema)."""
        return {
            "pc_a": self.pc_a,
            "pc_b": self.pc_b,
            "address": self.address,
            "write_a": self.write_a,
            "write_b": self.write_b,
            "gid_a": self.gid_a,
            "gid_b": self.gid_b,
            "pid_a": self.pid_a,
            "pid_b": self.pid_b,
            "bid_a": self.bid_a,
            "bid_b": self.bid_b,
            "description": self.describe(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RaceReport":
        return cls(
            pc_a=int(payload["pc_a"]),
            pc_b=int(payload["pc_b"]),
            address=int(payload["address"]),
            write_a=bool(payload["write_a"]),
            write_b=bool(payload["write_b"]),
            gid_a=int(payload["gid_a"]),
            gid_b=int(payload["gid_b"]),
            pid_a=int(payload["pid_a"]),
            pid_b=int(payload["pid_b"]),
            bid_a=int(payload["bid_a"]),
            bid_b=int(payload["bid_b"]),
        )

    def describe(self) -> str:
        """Human-readable one-liner with resolved source locations."""
        loc_a = GLOBAL_PCS.loc(self.pc_a)
        loc_b = GLOBAL_PCS.loc(self.pc_b)
        op_a = "write" if self.write_a else "read"
        op_b = "write" if self.write_b else "read"
        return (
            f"data race at {self.address:#x}: {op_a} {loc_a} "
            f"(thread {self.gid_a}, region {self.pid_a}) <-> {op_b} {loc_b} "
            f"(thread {self.gid_b}, region {self.pid_b})"
        )


def make_report(
    *,
    pc_a: int,
    pc_b: int,
    address: int,
    write_a: bool,
    write_b: bool,
    gid_a: int,
    gid_b: int,
    pid_a: int = 0,
    pid_b: int = 0,
    bid_a: int = 0,
    bid_b: int = 0,
) -> RaceReport:
    """Construct a report with the pc pair normalised."""
    if pc_a <= pc_b:
        return RaceReport(
            pc_a, pc_b, address, write_a, write_b,
            gid_a, gid_b, pid_a, pid_b, bid_a, bid_b,
        )
    return RaceReport(
        pc_b, pc_a, address, write_b, write_a,
        gid_b, gid_a, pid_b, pid_a, bid_b, bid_a,
    )


@dataclass
class RaceSet:
    """Deduplicated collection of race reports (insertion-ordered)."""

    _by_key: dict[tuple[int, int], RaceReport] = field(default_factory=dict)

    def add(self, report: RaceReport) -> bool:
        """Insert; returns True when the pc pair is new.

        A repeated pc pair keeps the canonical (smallest) witness, so the
        set's contents never depend on insertion order.
        """
        existing = self._by_key.get(report.key)
        if existing is None:
            self._by_key[report.key] = report
            return True
        if report.sort_key() < existing.sort_key():
            self._by_key[report.key] = report
        return False

    def get(self, key: tuple[int, int]) -> RaceReport:
        """The current witness for one pc pair."""
        return self._by_key[key]

    def update(self, reports: Iterable[RaceReport]) -> None:
        for r in reports:
            self.add(r)

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[RaceReport]:
        return iter(self._by_key.values())

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._by_key

    def reports(self) -> list[RaceReport]:
        return list(self._by_key.values())

    def pc_pairs(self) -> set[tuple[int, int]]:
        return set(self._by_key)

    def describe_all(self) -> str:
        return "\n".join(r.describe() for r in self)

    def to_json(self) -> list[dict]:
        """Canonical serialisation: reports sorted by pc pair."""
        return [
            self._by_key[key].to_json() for key in sorted(self._by_key)
        ]

    @classmethod
    def from_json(cls, payload: Iterable[dict]) -> "RaceSet":
        races = cls()
        for item in payload:
            races.add(RaceReport.from_json(item))
        return races
