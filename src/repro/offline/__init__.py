"""SWORD offline phase: concurrency recovery and interval-tree race analysis."""

from .analyzer import (
    AnalysisResult,
    AnalysisStats,
    OfflineAnalyzer,
    analyze_trace,
    check_node_pair,
)
from .engine import AnalysisEngine
from .intervals import IntervalData, IntervalInventory, IntervalKey
from .oracle import oracle_races
from .parallel import ParallelOfflineAnalyzer, default_workers
from .report import RaceReport, RaceSet, make_report

__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "AnalysisStats",
    "IntervalData",
    "IntervalInventory",
    "IntervalKey",
    "OfflineAnalyzer",
    "ParallelOfflineAnalyzer",
    "RaceReport",
    "RaceSet",
    "analyze_trace",
    "check_node_pair",
    "default_workers",
    "make_report",
    "oracle_races",
]
