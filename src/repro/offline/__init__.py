"""SWORD offline phase: concurrency recovery and interval-tree race analysis."""

from .analyzer import (
    AnalysisResult,
    AnalysisStats,
    OfflineAnalyzer,
    SerialOfflineAnalyzer,
    analyze_trace,
    check_node_pair,
)
from .cache import ResultCache
from .engine import AnalysisEngine
from .intervals import IntervalData, IntervalInventory, IntervalKey
from .options import AnalysisOptions, FastPathOptions
from .oracle import oracle_races
from .parallel import (
    DistributedOfflineAnalyzer,
    ParallelOfflineAnalyzer,
    default_workers,
)
from .report import RaceReport, RaceSet, make_report

__all__ = [
    "AnalysisEngine",
    "AnalysisOptions",
    "AnalysisResult",
    "AnalysisStats",
    "DistributedOfflineAnalyzer",
    "FastPathOptions",
    "IntervalData",
    "IntervalInventory",
    "IntervalKey",
    "OfflineAnalyzer",
    "ParallelOfflineAnalyzer",
    "RaceReport",
    "RaceSet",
    "ResultCache",
    "SerialOfflineAnalyzer",
    "analyze_trace",
    "check_node_pair",
    "default_workers",
    "make_report",
    "oracle_races",
]
