"""Persistent content-hashed result cache for the offline analysis.

Watch-mode re-analysis and repeated ``analyze`` invocations redo work the
trace already paid for: the per-interval trees and the per-pair verdicts
are pure functions of the trace bytes.  This cache keys both by content
hashes so unchanged work is skipped and *any* change to the underlying
files invalidates exactly the entries it affects:

* **interval token** — sha256 over the owning thread's log + meta file
  digests plus the interval identity and its chunk list;
* **context token** — sha256 over the trace-wide tables that feed pair
  verdicts (mutex sets, task graph, regions) and the cache format
  version;
* **pair token** — context token plus both interval tokens, oriented
  canonically (by interval identity, exactly like the engine's
  comparison) so either argument order finds the same entry.

Trees are stored with their digests via the exact-shape serialisation
(:mod:`repro.itree.serialize`) — a reloaded tree probes in the same
order as the built one, preserving canonical-witness determinism.  Pair
verdicts store the full report list the comparison generated (often
empty); replaying them through :meth:`RaceSet.add` is order-independent.

Writes are atomic (tmp + rename) and failures are swallowed: a
read-only or corrupted cache degrades to a miss, never to a wrong
answer.  Corrupt or truncated entries (torn write, bit rot) are
additionally *evicted* on discovery — counted on
``offline.pair_cache_corrupt_evictions`` — so one bad entry costs one
recompute, not one failed read per run forever.  The cache is only
sound for *closed* traces — the engine never attaches one to a live
streaming source.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from ..common.errors import DigestVersionError
from ..itree.digest import TreeDigest
from ..itree.serialize import TREE_FORMAT, tree_from_rows, tree_to_rows
from ..itree.tree import IntervalTree
from ..sword.traceformat import (
    MUTEXSETS_NAME,
    REGIONS_NAME,
    TASKS_NAME,
    log_name,
    meta_name,
)
from ..obs import get_obs
from .intervals import IntervalData
from .report import RaceReport

#: Bump to invalidate every existing cache (verdict semantics changed).
CACHE_FORMAT = 1

_HASH_CHUNK = 1 << 20


def _file_sha(path: Path) -> str:
    """Content digest of one file; missing files hash to a sentinel."""
    h = hashlib.sha256()
    try:
        with open(path, "rb") as fh:
            while True:
                block = fh.read(_HASH_CHUNK)
                if not block:
                    break
                h.update(block)
    except OSError:
        return "absent"
    return h.hexdigest()


class ResultCache:
    """Content-addressed store of interval trees and pair verdicts."""

    def __init__(
        self, trace_path: str | os.PathLike, cache_dir: str | os.PathLike | None = None
    ) -> None:
        self.trace_path = Path(trace_path)
        self.root = (
            Path(cache_dir) if cache_dir is not None
            else self.trace_path / ".sword-cache"
        )
        self._gid_tokens: dict[int, str] = {}
        self._context_token: Optional[str] = None
        self.tree_hits = 0
        self.pair_hits = 0
        self.misses = 0
        self.corrupt_evictions = 0
        self._m_corrupt = get_obs().registry.counter(
            "offline.pair_cache_corrupt_evictions",
            "corrupt/truncated cache entries deleted on discovery",
        )

    # -- tokens ------------------------------------------------------------------

    def _gid_token(self, gid: int) -> str:
        token = self._gid_tokens.get(gid)
        if token is None:
            token = hashlib.sha256(
                (
                    _file_sha(self.trace_path / log_name(gid))
                    + "|"
                    + _file_sha(self.trace_path / meta_name(gid))
                ).encode()
            ).hexdigest()
            self._gid_tokens[gid] = token
        return token

    def context_token(self) -> str:
        """Digest of everything trace-wide a pair verdict depends on."""
        if self._context_token is None:
            parts = [
                f"cache-format={CACHE_FORMAT}",
                f"tree-format={TREE_FORMAT}",
                _file_sha(self.trace_path / MUTEXSETS_NAME),
                _file_sha(self.trace_path / TASKS_NAME),
                _file_sha(self.trace_path / REGIONS_NAME),
            ]
            self._context_token = hashlib.sha256(
                "|".join(parts).encode()
            ).hexdigest()
        return self._context_token

    def interval_token(self, interval: IntervalData) -> str:
        key = interval.key
        payload = (
            f"{self._gid_token(key.gid)}|{key.gid}|{key.pid}|{key.bid}"
            f"|{sorted(interval.chunks)!r}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def pair_token(self, ia: IntervalData, ib: IntervalData) -> str:
        # Same canonical orientation as the engine's comparison, so both
        # argument orders address one entry.
        ka = (ia.key.gid, ia.key.pid, ia.key.bid)
        kb = (ib.key.gid, ib.key.pid, ib.key.bid)
        if kb < ka:
            ia, ib = ib, ia
        payload = (
            f"{self.context_token()}|{self.interval_token(ia)}"
            f"|{self.interval_token(ib)}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- storage -----------------------------------------------------------------

    def _read(self, path: Path) -> Optional[dict]:
        try:
            text = path.read_text()
        except OSError:
            return None  # plain miss (absent or unreadable)
        try:
            payload = json.loads(text)
        except ValueError:
            self._evict(path)
            return None
        if not isinstance(payload, dict):
            self._evict(path)
            return None
        return payload

    def _evict(self, path: Path) -> None:
        """Delete a corrupt/truncated entry so it costs one miss, not many."""
        self.corrupt_evictions += 1
        self._m_corrupt.inc()
        try:
            path.unlink()
        except OSError:
            pass  # never propagate: an unevictable entry stays a miss

    def _write(self, path: Path, payload: dict) -> None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # read-only/filled disk: stay a cache, not a failure

    # -- trees -------------------------------------------------------------------

    def _tree_path(self, token: str) -> Path:
        return self.root / "trees" / f"{token}.json"

    def load_tree(
        self, interval: IntervalData
    ) -> Optional[tuple[IntervalTree, TreeDigest, int]]:
        """Reload one interval's tree, digest, and event count — or None."""
        path = self._tree_path(self.interval_token(interval))
        payload = self._read(path)
        if payload is None or payload.get("format") != TREE_FORMAT:
            self.misses += 1
            return None
        try:
            tree = tree_from_rows(payload["nodes"])
            digest = TreeDigest.from_json(payload["digest"])
            events = int(payload["events_in"])
        except (
            DigestVersionError,
            KeyError,
            ValueError,
            TypeError,
            StopIteration,
        ):
            # A digest from a newer format version is unusable here; it
            # joins torn/corrupt entries as a counted, evicted miss.
            self._evict(path)
            self.misses += 1
            return None
        self.tree_hits += 1
        return tree, digest, events

    def store_tree(
        self,
        interval: IntervalData,
        tree: IntervalTree,
        digest: TreeDigest,
        events_in: int,
    ) -> None:
        self._write(
            self._tree_path(self.interval_token(interval)),
            {
                "format": TREE_FORMAT,
                "digest": digest.to_json(),
                "events_in": events_in,
                "nodes": tree_to_rows(tree),
            },
        )

    # -- pair verdicts -----------------------------------------------------------

    def _pair_path(self, token: str) -> Path:
        return self.root / "pairs" / f"{token}.json"

    def load_pair(
        self, ia: IntervalData, ib: IntervalData
    ) -> Optional[list[RaceReport]]:
        """The reports one comparison generated, or None on a miss.

        An empty list is a *hit*: the pair was compared (or pruned) and
        produced nothing.
        """
        path = self._pair_path(self.pair_token(ia, ib))
        payload = self._read(path)
        if payload is None or payload.get("format") != CACHE_FORMAT:
            self.misses += 1
            return None
        try:
            reports = [RaceReport.from_json(r) for r in payload["reports"]]
        except (KeyError, ValueError, TypeError):
            self._evict(path)
            self.misses += 1
            return None
        self.pair_hits += 1
        return reports

    def store_pair(
        self, ia: IntervalData, ib: IntervalData, reports: list[RaceReport]
    ) -> None:
        self._write(
            self._pair_path(self.pair_token(ia, ib)),
            {
                "format": CACHE_FORMAT,
                "reports": [r.to_json() for r in reports],
            },
        )
