"""Distributed offline analysis ("cluster" mode).

The paper distributes the offline phase across nodes: per-thread interval
trees are built independently and the tree-vs-tree comparisons are spread
out, bringing multi-hour analyses down to seconds/minutes (Table III's MT
column, §IV-C).  We reproduce the structure with a process pool: the pair
plan is partitioned, every worker opens the trace directory itself (no tree
pickling — workers rebuild the trees they need, exactly like remote nodes
reading a shared filesystem), and race sets are merged at the coordinator.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..common.config import OfflineConfig
from ..obs import Instrumentation, get_obs
from ..sword.reader import TraceDir
from .analyzer import OfflineAnalyzer
from .engine import AnalysisEngine, AnalysisResult, AnalysisStats
from .intervals import IntervalInventory, IntervalKey
from .report import RaceReport, RaceSet


@dataclass(frozen=True, slots=True)
class _WorkerTask:
    """One worker's share of the comparison plan (picklable)."""

    trace_path: str
    pair_keys: tuple[tuple[IntervalKey, IntervalKey], ...]
    chunk_events: int


def _run_worker(task: _WorkerTask) -> tuple[list[tuple], AnalysisStats]:
    """Executed in a worker process: compare the assigned interval pairs.

    The engine is closed via its context manager even when a comparison
    raises — long-lived pools (and strict platforms) must not leak the
    per-thread log-file descriptors the engine opens.
    """
    trace = TraceDir(task.trace_path)
    races = RaceSet()
    with AnalysisEngine(
        trace, OfflineConfig(chunk_events=task.chunk_events)
    ) as engine:
        inventory = IntervalInventory(trace)
        for key_a, key_b in task.pair_keys:
            ia = inventory.intervals[key_a]
            ib = inventory.intervals[key_b]
            engine.analyze_pair(ia, ib, races)
        stats = engine.stats
    # RaceReport is a frozen dataclass of ints/bools: ship as tuples.
    rows = [
        (
            r.pc_a, r.pc_b, r.address, r.write_a, r.write_b,
            r.gid_a, r.gid_b, r.pid_a, r.pid_b, r.bid_a, r.bid_b,
        )
        for r in races
    ]
    return rows, stats


def default_workers() -> int:
    """Worker count mirroring "one core per thread tree" (capped sanely)."""
    return max(2, min(8, os.cpu_count() or 2))


class ParallelOfflineAnalyzer:
    """Coordinator for the distributed offline analysis."""

    def __init__(
        self,
        trace: TraceDir,
        config: OfflineConfig,
        obs: Instrumentation | None = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.config.validate()
        self.obs = obs or get_obs()

    def analyze(self) -> AnalysisResult:
        """Plan centrally, compare in parallel, merge race sets."""
        stats = AnalysisStats()
        t0 = time.perf_counter()
        with self.obs.tracer.span("metadata-scan", category="offline-mt"):
            inventory = IntervalInventory(self.trace)
            pairs = [
                (a.key, b.key) for a, b in inventory.concurrent_pairs()
            ]
        stats.intervals = len(inventory)
        stats.concurrent_pairs = len(pairs)
        stats.plan_seconds = time.perf_counter() - t0

        races = RaceSet()
        nworkers = min(self.config.workers, max(1, len(pairs)))
        if nworkers <= 1 or len(pairs) == 0:
            # Degenerate case: fall back to the serial analyzer.
            serial = OfflineAnalyzer(
                self.trace, self.config, obs=self.obs
            ).analyze()
            return serial

        # Round-robin partition keeps per-worker tree reuse high when
        # consecutive pairs share intervals.
        shards: list[list[tuple[IntervalKey, IntervalKey]]] = [
            [] for _ in range(nworkers)
        ]
        for i, pair in enumerate(pairs):
            shards[i % nworkers].append(pair)
        tasks = [
            _WorkerTask(
                trace_path=str(self.trace.path),
                pair_keys=tuple(shard),
                chunk_events=self.config.chunk_events,
            )
            for shard in shards
            if shard
        ]
        with self.obs.tracer.span(
            "compare-scatter", category="offline-mt", workers=nworkers
        ):
            with ProcessPoolExecutor(max_workers=nworkers) as pool:
                for rows, wstats in pool.map(_run_worker, tasks):
                    for row in rows:
                        races.add(RaceReport(*row))
                    stats.trees_built += wstats.trees_built
                    stats.tree_nodes += wstats.tree_nodes
                    stats.events_read += wstats.events_read
                    stats.overlap_candidates += wstats.overlap_candidates
                    stats.ilp_solves += wstats.ilp_solves
                    stats.build_seconds = max(
                        stats.build_seconds, wstats.build_seconds
                    )
                    stats.compare_seconds = max(
                        stats.compare_seconds, wstats.compare_seconds
                    )
        stats.races_found = len(races)
        # Workers run in their own processes; the coordinator mirrors the
        # merged totals so one registry still tells the whole story.
        registry = self.obs.registry
        registry.gauge("offline_mt.workers").set(nworkers)
        registry.gauge("offline_mt.intervals").set(stats.intervals)
        registry.gauge("offline_mt.concurrent_pairs").set(
            stats.concurrent_pairs
        )
        registry.counter("offline_mt.trees_built").inc(stats.trees_built)
        registry.counter("offline_mt.events_read").inc(stats.events_read)
        registry.counter("offline_mt.ilp_solves").inc(stats.ilp_solves)
        registry.gauge("offline_mt.races").set(len(races))
        return AnalysisResult(races=races, stats=stats)
