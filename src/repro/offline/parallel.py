"""Distributed offline analysis ("cluster" mode).

The paper distributes the offline phase across nodes: per-thread interval
trees are built independently and the tree-vs-tree comparisons are spread
out, bringing multi-hour analyses down to seconds/minutes (Table III's MT
column, §IV-C).  We reproduce the structure with a process pool over the
*same shard machinery the analysis service runs on*: the pair plan is cut
by :func:`repro.serve.shards.plan_shards`, every shard is executed by
:func:`repro.serve.workers.run_shard` (workers open the trace directory
themselves — no tree pickling, exactly like remote nodes reading a shared
filesystem), and race sets are merged at the coordinator.  One worker
code path means the byte-identical-races guarantee is proven once, and a
``repro serve`` fleet and a one-shot ``mode="parallel"`` call cannot
drift apart.

The supported entry point is :func:`repro.api.analyze` with
``mode="parallel"``; :class:`ParallelOfflineAnalyzer` remains as a
deprecated alias of :class:`DistributedOfflineAnalyzer`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from ..common.config import OfflineConfig
from ..common.deprecation import warn_once
from ..obs import Instrumentation, get_obs
from ..sword.reader import TraceDir
from .analyzer import SerialOfflineAnalyzer
from .engine import AnalysisResult, AnalysisStats
from .options import AnalysisOptions
from .report import RaceSet

#: Pair-shard grain for one-shot parallel analysis; small enough that the
#: process pool load-balances, large enough to amortise tree builds.
SHARD_PAIRS = 32


def default_workers() -> int:
    """Worker count mirroring "one core per thread tree" (capped sanely)."""
    return max(2, min(8, os.cpu_count() or 2))


class DistributedOfflineAnalyzer:
    """Coordinator for the distributed offline analysis."""

    def __init__(
        self,
        trace: TraceDir | str | os.PathLike,
        config: OfflineConfig | None = None,
        obs: Instrumentation | None = None,
        *,
        options: AnalysisOptions | None = None,
    ) -> None:
        if not isinstance(trace, TraceDir):
            trace = TraceDir(trace)
        self.trace = trace
        self.options = options or AnalysisOptions.from_config(config)
        self.options.validate()
        self.config = self.options.offline_config()
        self.obs = obs or self.options.obs or get_obs()

    def analyze(self) -> AnalysisResult:
        """Plan centrally, compare in parallel, merge race sets."""
        # Deferred: repro.offline.__init__ imports this module, and
        # repro.serve imports repro.offline — a module-level import here
        # would close the cycle mid-initialisation.
        from ..serve.shards import plan_shards
        from ..serve.tracing import ObsConfig
        from ..serve.workers import merge_stats, run_shard

        stats = AnalysisStats()
        t0 = time.perf_counter()
        with self.obs.tracer.span("metadata-scan", category="offline-mt"):
            plan = plan_shards(
                self.trace,
                options=self.options,
                shard_pairs=SHARD_PAIRS,
                min_shards=self.options.workers,
                # With a live bundle, shards instrument themselves and
                # ship their spans home for one coordinator flamegraph.
                obs_config=ObsConfig.from_obs(self.obs),
            )
        stats.intervals = plan.intervals
        stats.concurrent_pairs = plan.concurrent_pairs
        stats.plan_seconds = time.perf_counter() - t0

        races = RaceSet()
        nworkers = min(self.options.workers, max(1, len(plan.shards)))
        if nworkers <= 1 or plan.concurrent_pairs == 0:
            # Degenerate case: fall back to the serial analyzer.
            return SerialOfflineAnalyzer(
                self.trace, obs=self.obs, options=self.options
            ).analyze()

        with self.obs.tracer.span(
            "compare-scatter", category="offline-mt", workers=nworkers
        ):
            with ProcessPoolExecutor(max_workers=nworkers) as pool:
                for outcome in pool.map(run_shard, plan.shards):
                    for report in outcome.reports():
                        races.add(report)
                    merge_stats(stats, outcome.stats)
                    if outcome.spans:
                        # One trace-viewer row per worker process.
                        self.obs.tracer.ingest(
                            outcome.spans, tid=outcome.worker_pid
                        )
        # Coordinator-side verdict injection: one contribution regardless
        # of the shard count, merged by RaceSet's canonical minimum just
        # like the serial driver's.
        table = getattr(self.trace, "static_verdicts", None)
        if table is not None:
            stats.sites_proven_free = table.sites_proven_free
            stats.sites_definite_race = table.sites_definite_race
            stats.events_elided = int(table.events_elided)
            for report in table.race_reports():
                races.add(report)
        stats.races_found = len(races)
        # Workers run in their own processes; the coordinator mirrors the
        # merged totals so one registry still tells the whole story.
        registry = self.obs.registry
        registry.gauge("offline_mt.workers").set(nworkers)
        registry.gauge("offline_mt.intervals").set(stats.intervals)
        registry.gauge("offline_mt.concurrent_pairs").set(
            stats.concurrent_pairs
        )
        registry.counter("offline_mt.trees_built").inc(stats.trees_built)
        registry.counter("offline_mt.events_read").inc(stats.events_read)
        registry.counter("offline_mt.ilp_solves").inc(stats.ilp_solves)
        registry.counter("offline_mt.pairs_pruned").inc(stats.pairs_pruned)
        registry.gauge("offline_mt.races").set(len(races))
        return AnalysisResult(races=races, stats=stats)


class ParallelOfflineAnalyzer(DistributedOfflineAnalyzer):
    """Deprecated alias; use ``repro.api.analyze(trace, mode="parallel")``."""

    def __init__(self, *args, **kwargs) -> None:
        warn_once(
            "ParallelOfflineAnalyzer",
            "ParallelOfflineAnalyzer is deprecated; use "
            "repro.api.analyze(trace, mode='parallel') "
            "(or repro.offline.DistributedOfflineAnalyzer)",
        )
        super().__init__(*args, **kwargs)
