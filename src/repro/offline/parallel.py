"""Distributed offline analysis ("cluster" mode).

The paper distributes the offline phase across nodes: per-thread interval
trees are built independently and the tree-vs-tree comparisons are spread
out, bringing multi-hour analyses down to seconds/minutes (Table III's MT
column, §IV-C).  We reproduce the structure with a process pool: the pair
plan is partitioned, every worker opens the trace directory itself (no tree
pickling — workers rebuild the trees they need, exactly like remote nodes
reading a shared filesystem), and race sets are merged at the coordinator.

The supported entry point is :func:`repro.api.analyze` with
``mode="parallel"``; :class:`ParallelOfflineAnalyzer` remains as a
deprecated alias of :class:`DistributedOfflineAnalyzer`.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..common.config import OfflineConfig
from ..obs import Instrumentation, get_obs
from ..sword.reader import TraceDir
from .analyzer import SerialOfflineAnalyzer
from .engine import AnalysisEngine, AnalysisResult, AnalysisStats
from .intervals import IntervalInventory, IntervalKey
from .options import AnalysisOptions, FastPathOptions
from .report import RaceReport, RaceSet


@dataclass(frozen=True, slots=True)
class _WorkerTask:
    """One worker's share of the comparison plan (picklable)."""

    trace_path: str
    pair_keys: tuple[tuple[IntervalKey, IntervalKey], ...]
    chunk_events: int
    use_ilp_crosscheck: bool = False
    fastpath: FastPathOptions | None = None


def _run_worker(task: _WorkerTask) -> tuple[list[tuple], AnalysisStats]:
    """Executed in a worker process: compare the assigned interval pairs.

    The engine is closed via its context manager even when a comparison
    raises — long-lived pools (and strict platforms) must not leak the
    per-thread log-file descriptors the engine opens.
    """
    trace = TraceDir(task.trace_path)
    races = RaceSet()
    options = AnalysisOptions(
        chunk_events=task.chunk_events,
        use_ilp_crosscheck=task.use_ilp_crosscheck,
        fastpath=task.fastpath or FastPathOptions(),
    )
    with AnalysisEngine(trace, options=options) as engine:
        inventory = IntervalInventory(trace)
        for key_a, key_b in task.pair_keys:
            ia = inventory.intervals[key_a]
            ib = inventory.intervals[key_b]
            engine.analyze_pair(ia, ib, races)
        stats = engine.stats
    # RaceReport is a frozen dataclass of ints/bools: ship as tuples.
    rows = [
        (
            r.pc_a, r.pc_b, r.address, r.write_a, r.write_b,
            r.gid_a, r.gid_b, r.pid_a, r.pid_b, r.bid_a, r.bid_b,
        )
        for r in races
    ]
    return rows, stats


def default_workers() -> int:
    """Worker count mirroring "one core per thread tree" (capped sanely)."""
    return max(2, min(8, os.cpu_count() or 2))


class DistributedOfflineAnalyzer:
    """Coordinator for the distributed offline analysis."""

    def __init__(
        self,
        trace: TraceDir | str | os.PathLike,
        config: OfflineConfig | None = None,
        obs: Instrumentation | None = None,
        *,
        options: AnalysisOptions | None = None,
    ) -> None:
        if not isinstance(trace, TraceDir):
            trace = TraceDir(trace)
        self.trace = trace
        self.options = options or AnalysisOptions.from_config(config)
        self.options.validate()
        self.config = self.options.offline_config()
        self.obs = obs or self.options.obs or get_obs()

    def analyze(self) -> AnalysisResult:
        """Plan centrally, compare in parallel, merge race sets."""
        stats = AnalysisStats()
        t0 = time.perf_counter()
        with self.obs.tracer.span("metadata-scan", category="offline-mt"):
            inventory = IntervalInventory(self.trace)
            pairs = [
                (a.key, b.key) for a, b in inventory.concurrent_pairs()
            ]
        stats.intervals = len(inventory)
        stats.concurrent_pairs = len(pairs)
        stats.plan_seconds = time.perf_counter() - t0

        races = RaceSet()
        nworkers = min(self.options.workers, max(1, len(pairs)))
        if nworkers <= 1 or len(pairs) == 0:
            # Degenerate case: fall back to the serial analyzer.
            serial = SerialOfflineAnalyzer(
                self.trace, obs=self.obs, options=self.options
            ).analyze()
            return serial

        # Round-robin partition keeps per-worker tree reuse high when
        # consecutive pairs share intervals.
        shards: list[list[tuple[IntervalKey, IntervalKey]]] = [
            [] for _ in range(nworkers)
        ]
        for i, pair in enumerate(pairs):
            shards[i % nworkers].append(pair)
        tasks = [
            _WorkerTask(
                trace_path=str(self.trace.path),
                pair_keys=tuple(shard),
                chunk_events=self.options.chunk_events,
                use_ilp_crosscheck=self.options.use_ilp_crosscheck,
                fastpath=self.options.fastpath,
            )
            for shard in shards
            if shard
        ]
        with self.obs.tracer.span(
            "compare-scatter", category="offline-mt", workers=nworkers
        ):
            with ProcessPoolExecutor(max_workers=nworkers) as pool:
                for rows, wstats in pool.map(_run_worker, tasks):
                    for row in rows:
                        races.add(RaceReport(*row))
                    stats.trees_built += wstats.trees_built
                    stats.tree_nodes += wstats.tree_nodes
                    stats.events_read += wstats.events_read
                    stats.overlap_candidates += wstats.overlap_candidates
                    stats.ilp_solves += wstats.ilp_solves
                    stats.pairs_pruned += wstats.pairs_pruned
                    stats.solver_memo_hits += wstats.solver_memo_hits
                    stats.solver_memo_misses += wstats.solver_memo_misses
                    stats.pair_cache_hits += wstats.pair_cache_hits
                    stats.tree_cache_disk_hits += wstats.tree_cache_disk_hits
                    stats.build_seconds = max(
                        stats.build_seconds, wstats.build_seconds
                    )
                    stats.compare_seconds = max(
                        stats.compare_seconds, wstats.compare_seconds
                    )
        stats.races_found = len(races)
        # Workers run in their own processes; the coordinator mirrors the
        # merged totals so one registry still tells the whole story.
        registry = self.obs.registry
        registry.gauge("offline_mt.workers").set(nworkers)
        registry.gauge("offline_mt.intervals").set(stats.intervals)
        registry.gauge("offline_mt.concurrent_pairs").set(
            stats.concurrent_pairs
        )
        registry.counter("offline_mt.trees_built").inc(stats.trees_built)
        registry.counter("offline_mt.events_read").inc(stats.events_read)
        registry.counter("offline_mt.ilp_solves").inc(stats.ilp_solves)
        registry.counter("offline_mt.pairs_pruned").inc(stats.pairs_pruned)
        registry.gauge("offline_mt.races").set(len(races))
        return AnalysisResult(races=races, stats=stats)


class ParallelOfflineAnalyzer(DistributedOfflineAnalyzer):
    """Deprecated alias; use ``repro.api.analyze(trace, mode="parallel")``."""

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "ParallelOfflineAnalyzer is deprecated; use "
            "repro.api.analyze(trace, mode='parallel') "
            "(or repro.offline.DistributedOfflineAnalyzer)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
