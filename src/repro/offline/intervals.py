"""Interval inventory and concurrency planning for the offline phase.

From the per-thread meta files the planner assembles one
:class:`IntervalData` per (thread, region, barrier interval) and computes
the set of interval pairs whose events may run concurrently — the only
pairs the race checker compares.

The pair computation avoids the naive O(I^2) label comparison by exploiting
the structure of the judgment (:mod:`repro.osl.concurrency`):

* **same region**: concurrent iff same ``bid``, different thread — pairs are
  enumerated within each (pid, bid) group;
* **different regions**: the verdict depends only on the two regions' fork
  chains except when one region is an ancestor of the other, in which case
  the ancestor's interval must sit at the exact fork position (same bid,
  different slot).  Cross-region work therefore only exists when nested
  parallelism is present, and is resolved per region *pair*, not per
  interval pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterator

from ..osl.concurrency import IntervalLabel, concurrent_intervals
from ..sword.reader import TraceDir


@dataclass(frozen=True, slots=True)
class IntervalKey:
    """Identity of one thread's barrier interval."""

    gid: int
    pid: int
    bid: int


@dataclass(slots=True)
class IntervalData:
    """One interval's metadata: label, slot, and its log-file chunks."""

    key: IntervalKey
    slot: int
    span: int
    label: IntervalLabel
    chunks: list[tuple[int, int]] = field(default_factory=list)  # (begin, size)
    #: Per-chunk frame-resident digests, parallel to ``chunks``; entries
    #: are None where the meta row carried no digest.
    digests: list = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(size for _, size in self.chunks)


class IntervalInventory:
    """All intervals of a trace plus the concurrent-pair plan."""

    def __init__(self, trace: TraceDir) -> None:
        self.trace = trace
        self.intervals: dict[IntervalKey, IntervalData] = {}
        self._by_region: dict[int, list[IntervalData]] = {}
        self._load()

    def _load(self) -> None:
        salvage = getattr(self.trace, "integrity_mode", "strict") == "salvage"
        skipped: set[tuple[int, int, int]] = set()
        for gid in self.trace.thread_gids:
            reader = self.trace.reader(gid)
            try:
                for row in reader.rows:
                    key = IntervalKey(gid=gid, pid=row.pid, bid=row.bid)
                    data = self.intervals.get(key)
                    if data is None:
                        try:
                            label = self.trace.interval_label(
                                row.pid, row.offset, row.bid
                            )
                        except KeyError:
                            # Salvage: the region's fork record did not
                            # survive, so the interval cannot be placed in
                            # the concurrency structure — skip it (an
                            # under-report, never a wrong report).
                            if not salvage:
                                raise
                            if (gid, row.pid, row.bid) not in skipped:
                                skipped.add((gid, row.pid, row.bid))
                                self.trace.integrity.intervals_skipped += 1
                            continue
                        data = IntervalData(
                            key=key,
                            slot=row.offset,
                            span=row.span,
                            label=label,
                        )
                        self.intervals[key] = data
                        self._by_region.setdefault(row.pid, []).append(data)
                    data.chunks.append((row.data_begin, row.size))
                    data.digests.append(row.digest)
            finally:
                reader.close()

    def __len__(self) -> int:
        return len(self.intervals)

    def regions(self) -> list[int]:
        return sorted(self._by_region)

    def region_intervals(self, pid: int) -> list[IntervalData]:
        return self._by_region.get(pid, [])

    # -- concurrency planning ---------------------------------------------------

    def task_intervals(self) -> set[tuple[int, int]]:
        """Intervals containing explicit tasks (the tasking extension)."""
        return {
            (t.pid, t.bid) for t in self.trace.task_graph.tasks()
        }

    def concurrent_pairs(self) -> Iterator[tuple[IntervalData, IntervalData]]:
        """Yield every pair of intervals that may execute concurrently.

        Pairs between chunks of the *same* thread are never yielded (a
        thread cannot race with itself) — except that an interval holding
        explicit tasks is compared with *itself*: a deferred task is
        concurrent with its executor's and creator's surrounding code, so
        same-thread chunks can race through tasks (tasking extension).
        """
        tasky = self.task_intervals()
        # Same-region pairs: group by (pid, bid), all cross-thread pairs.
        for pid, intervals in self._by_region.items():
            by_bid: dict[int, list[IntervalData]] = {}
            for it in intervals:
                by_bid.setdefault(it.key.bid, []).append(it)
            for bid, group in by_bid.items():
                if (pid, bid) in tasky:
                    for a in group:
                        yield a, a
                for a, b in combinations(group, 2):
                    if a.key.gid != b.key.gid:
                        yield a, b

        # Cross-region pairs exist only with nested parallelism.
        nested = [
            pid for pid in self._by_region if self.trace.regions[pid]["ppid"] > 0
        ]
        if not nested:
            return
        pids = sorted(self._by_region)
        chains = {pid: self._chain(pid) for pid in pids}
        for i, pid_a in enumerate(pids):
            for pid_b in pids[i + 1 :]:
                yield from self._cross_region_pairs(
                    pid_a, pid_b, chains[pid_a], chains[pid_b]
                )

    def _chain(self, pid: int) -> IntervalLabel:
        """Ancestor fork chain of a region including its own leaf marker.

        Reuses the trace's label reconstruction with a placeholder leaf
        (slot 0, bid 0); only the ancestor pairs matter for planning.
        """
        return self.trace.interval_label(pid, 0, 0)

    def _cross_region_pairs(
        self,
        pid_a: int,
        pid_b: int,
        chain_a: IntervalLabel,
        chain_b: IntervalLabel,
    ) -> Iterator[tuple[IntervalData, IntervalData]]:
        """Concurrent pairs between two distinct regions.

        Walk the fork chains to the first divergence:

        * divergence within both ancestor chains -> the verdict is uniform
          over all interval pairs (concurrent iff same region, same bid,
          different slot at the divergence level);
        * one chain is a prefix of the other up to its leaf -> the shorter
          region is an ancestor: only its intervals sitting *at the fork
          position's bid* with a *different slot* than the forking thread
          run concurrently with the descendant.
        """
        # Compare ancestor parts (exclude each chain's placeholder leaf).
        anc_a = chain_a[:-1]
        anc_b = chain_b[:-1]
        n = min(len(anc_a), len(anc_b))
        for lvl in range(n):
            pa, pb = anc_a[lvl], anc_b[lvl]
            if pa == pb:
                continue
            if pa.region != pb.region or pa.slot == pb.slot or pa.bid != pb.bid:
                return  # sequential for every interval pair
            # Uniformly concurrent: nested regions forked by different
            # teammates inside one barrier interval (paper's R2/R3).
            for a in self._by_region[pid_a]:
                for b in self._by_region[pid_b]:
                    if a.key.gid != b.key.gid:
                        yield a, b
            return
        # No divergence in the common ancestor prefix: ancestor/descendant.
        if len(anc_a) == len(anc_b):
            # Sibling regions forked from the same position by the same
            # thread -> serialised.
            return
        if len(anc_a) < len(anc_b):
            ancestor_pid, descendant_pid = pid_a, pid_b
            fork = anc_b[len(anc_a)]
        else:
            ancestor_pid, descendant_pid = pid_b, pid_a
            fork = anc_a[len(anc_b)]
        if fork.region != ancestor_pid:
            # The descendant's lineage passes through a *different* region at
            # this depth; its fork chain diverged from the ancestor region
            # entirely -> sequential.
            return
        for a in self._by_region[ancestor_pid]:
            if a.key.bid != fork.bid or a.slot == fork.slot:
                continue  # barrier-separated, or the forking thread itself
            for b in self._by_region[descendant_pid]:
                if a.key.gid != b.key.gid:
                    yield a, b
