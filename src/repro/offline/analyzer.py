"""The offline race-detection core (paper §III-B).

Pipeline per trace directory:

1. parse metadata, reconstruct the concurrency structure, plan the
   concurrent interval pairs (:mod:`repro.offline.intervals`);
2. per interval, stream its log chunks and build a summarised interval tree
   (:mod:`repro.itree.builder`) — trees are cached with a bounded LRU so the
   pass stays memory-bounded on large traces;
3. per concurrent pair, walk the smaller tree and probe the larger for
   byte-extent overlaps (``O(M log M)``), refining every candidate with the
   exact Diophantine/ILP check, the mutex-set disjointness test, and the
   write/atomic conditions;
4. deduplicate into :class:`~repro.offline.report.RaceSet` by pc pair.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..common.config import OfflineConfig
from ..ilp.bruteforce import bruteforce_overlap
from ..ilp.overlap import constraint_of, intervals_share_address
from ..itree.builder import TreeBuilder
from ..itree.tree import IntervalTree
from ..omp.mutexset import MutexSetTable
from ..sword.reader import TraceDir
from .intervals import IntervalData, IntervalInventory
from .report import RaceSet, make_report


@dataclass(slots=True)
class AnalysisStats:
    """Where the offline time went (Table III's OA column breakdown)."""

    intervals: int = 0
    concurrent_pairs: int = 0
    trees_built: int = 0
    tree_nodes: int = 0
    events_read: int = 0
    overlap_candidates: int = 0
    ilp_solves: int = 0
    races_found: int = 0
    plan_seconds: float = 0.0
    build_seconds: float = 0.0
    compare_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.plan_seconds + self.build_seconds + self.compare_seconds


@dataclass(slots=True)
class AnalysisResult:
    """Races plus phase statistics for one trace."""

    races: RaceSet
    stats: AnalysisStats

    @property
    def race_count(self) -> int:
        return len(self.races)


class _TreeCache:
    """Bounded LRU of built interval trees keyed by interval identity."""

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, capacity)
        self._cache: OrderedDict = OrderedDict()

    def get(self, key):
        tree = self._cache.get(key)
        if tree is not None:
            self._cache.move_to_end(key)
        return tree

    def put(self, key, tree) -> None:
        self._cache[key] = tree
        self._cache.move_to_end(key)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)


def check_node_pair(
    a, b, mutexsets: MutexSetTable, *, crosscheck: bool = False
):
    """Apply the full race condition to two tree nodes' intervals.

    Returns a witness address or None.  Conditions (paper §III-B): at least
    one write, not both atomic, disjoint mutex sets, and a shared byte
    address under the strided-interval constraints.
    """
    if not (a.is_write or b.is_write):
        return None
    if a.is_atomic and b.is_atomic:
        return None
    if not mutexsets.disjoint(a.msid, b.msid):
        return None
    result = intervals_share_address(a, b)
    if crosscheck:
        brute = bruteforce_overlap(constraint_of(a), constraint_of(b))
        if (result is None) != (brute is None):
            raise AssertionError(
                f"ILP/bruteforce disagreement on {a} vs {b}"
            )
    return None if result is None else result.address


class OfflineAnalyzer:
    """Single-node offline analysis driver."""

    def __init__(
        self, trace: TraceDir, config: OfflineConfig | None = None
    ) -> None:
        self.trace = trace
        self.config = config or OfflineConfig()
        self.config.validate()
        self.stats = AnalysisStats()
        self._tree_cache = _TreeCache(capacity=64)
        self._readers: dict[int, object] = {}

    # -- tree construction -------------------------------------------------------

    def _reader(self, gid: int):
        reader = self._readers.get(gid)
        if reader is None:
            reader = self.trace.reader(gid)
            self._readers[gid] = reader
        return reader

    def build_tree(self, interval: IntervalData) -> IntervalTree:
        """Stream one interval's chunks into a summarised tree (cached)."""
        key = interval.key
        cached = self._tree_cache.get(key)
        if cached is not None:
            return cached
        t0 = time.perf_counter()
        builder = TreeBuilder()
        reader = self._reader(key.gid)
        for begin, size in interval.chunks:
            for records in reader.iter_range(begin, size):
                # Re-chunk to the configured streaming granularity.
                step = self.config.chunk_events
                for lo in range(0, records.shape[0], step):
                    builder.add_records(records[lo : lo + step])
        tree = builder.finish()
        self.stats.trees_built += 1
        self.stats.tree_nodes += len(tree)
        self.stats.events_read += builder.events_in
        self.stats.build_seconds += time.perf_counter() - t0
        self._tree_cache.put(key, tree)
        return tree

    # -- pair comparison ------------------------------------------------------------

    def compare_trees(
        self,
        tree_a: IntervalTree,
        tree_b: IntervalTree,
        ia: IntervalData,
        ib: IntervalData,
        races: RaceSet,
    ) -> None:
        """Probe every node of the smaller tree against the larger tree.

        For intervals carrying explicit tasks (tasking extension), every
        candidate node pair is additionally gated by the task-ordering
        judgment — including same-thread pairs, which is why such
        intervals are also compared against themselves.
        """
        from ..tasking.graph import decode_point

        if len(tree_a) > len(tree_b):
            tree_a, tree_b = tree_b, tree_a
            ia, ib = ib, ia
        mutexsets = self.trace.mutexsets
        graph = self.trace.task_graph
        use_tasks = (
            len(graph) > 0
            and (ia.key.pid, ia.key.bid) == (ib.key.pid, ib.key.bid)
            and any(
                t.pid == ia.key.pid and t.bid == ia.key.bid
                for t in graph.tasks()
            )
        )
        for node in tree_a:
            si = node.interval
            for hit in tree_b.iter_overlaps(si.low, si.high):
                other = hit.interval
                self.stats.overlap_candidates += 1
                if use_tasks:
                    ent_a, seq_a = decode_point(si.point)
                    ent_b, seq_b = decode_point(other.point)
                    if not graph.concurrent(
                        ent_a, seq_a, ia.key.gid, ent_b, seq_b, ib.key.gid
                    ):
                        continue
                if (si.pc, other.pc) in races or (other.pc, si.pc) in races:
                    continue  # already reported this site pair
                self.stats.ilp_solves += 1
                address = check_node_pair(
                    si,
                    other,
                    mutexsets,
                    crosscheck=self.config.use_ilp_crosscheck,
                )
                if address is None:
                    continue
                races.add(
                    make_report(
                        pc_a=si.pc,
                        pc_b=other.pc,
                        address=address,
                        write_a=si.is_write,
                        write_b=other.is_write,
                        gid_a=ia.key.gid,
                        gid_b=ib.key.gid,
                        pid_a=ia.key.pid,
                        pid_b=ib.key.pid,
                        bid_a=ia.key.bid,
                        bid_b=ib.key.bid,
                    )
                )
                self.stats.races_found = len(races)

    # -- driver ----------------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        """Run the complete offline analysis for this trace."""
        t0 = time.perf_counter()
        inventory = IntervalInventory(self.trace)
        pairs = list(inventory.concurrent_pairs())
        self.stats.intervals = len(inventory)
        self.stats.concurrent_pairs = len(pairs)
        self.stats.plan_seconds = time.perf_counter() - t0

        races = RaceSet()
        for ia, ib in pairs:
            tree_a = self.build_tree(ia)
            tree_b = self.build_tree(ib)
            t1 = time.perf_counter()
            self.compare_trees(tree_a, tree_b, ia, ib, races)
            self.stats.compare_seconds += time.perf_counter() - t1
        self.stats.races_found = len(races)
        self._close()
        return AnalysisResult(races=races, stats=self.stats)

    def _close(self) -> None:
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()


def analyze_trace(
    path, config: OfflineConfig | None = None
) -> AnalysisResult:
    """Convenience: open a trace directory and analyze it."""
    return OfflineAnalyzer(TraceDir(path), config).analyze()
