"""The offline race-detection driver (paper §III-B).

Pipeline per trace directory:

1. parse metadata, reconstruct the concurrency structure, plan the
   concurrent interval pairs (:mod:`repro.offline.intervals`);
2. per interval, stream its log chunks and build a summarised interval tree
   (:mod:`repro.itree.builder`) — trees are cached with a bounded LRU so the
   pass stays memory-bounded on large traces;
3. per concurrent pair, walk the smaller tree and probe the larger for
   byte-extent overlaps (``O(M log M)``), refining every candidate with the
   exact Diophantine/ILP check, the mutex-set disjointness test, and the
   write/atomic conditions;
4. deduplicate into :class:`~repro.offline.report.RaceSet` by pc pair.

Steps 2-3 live in the shared :class:`~repro.offline.engine.AnalysisEngine`;
this module is the post-mortem driver around it (the distributed and
streaming drivers are :mod:`repro.offline.parallel` and
:mod:`repro.stream.analyzer`).

The supported entry point is :func:`repro.api.analyze`;
:class:`OfflineAnalyzer` remains as a deprecated alias of
:class:`SerialOfflineAnalyzer`.
"""

from __future__ import annotations

import os
import time

from ..common.config import OfflineConfig
from ..common.deprecation import warn_once
from ..obs import Instrumentation, get_obs
from ..sword.reader import TraceDir
from .engine import (
    AnalysisEngine,
    AnalysisResult,
    AnalysisStats,
    check_node_pair,
)
from .intervals import IntervalData, IntervalInventory
from .options import AnalysisOptions
from .report import RaceSet

__all__ = [
    "AnalysisResult",
    "AnalysisStats",
    "OfflineAnalyzer",
    "SerialOfflineAnalyzer",
    "analyze_trace",
    "check_node_pair",
]


class SerialOfflineAnalyzer:
    """Single-node post-mortem analysis driver."""

    def __init__(
        self,
        trace: TraceDir | str | os.PathLike,
        config: OfflineConfig | None = None,
        obs: Instrumentation | None = None,
        *,
        options: AnalysisOptions | None = None,
    ) -> None:
        self.options = options or AnalysisOptions.from_config(config)
        if not isinstance(trace, TraceDir):
            trace = TraceDir(trace, integrity=self.options.integrity)
        elif trace.integrity_mode != self.options.integrity:
            # An already-open TraceDir wins: align the options so the
            # engine and the trace agree on the mode.
            self.options = self.options.copy(integrity=trace.integrity_mode)
        self.trace = trace
        self.salvage = self.options.integrity == "salvage"
        self.config = self.options.offline_config()
        self.obs = obs or self.options.obs or get_obs()
        self.engine = AnalysisEngine(trace, options=self.options, obs=self.obs)

    @property
    def stats(self) -> AnalysisStats:
        return self.engine.stats

    def __enter__(self) -> "SerialOfflineAnalyzer":
        return self

    def __exit__(self, *exc) -> None:
        self._close()

    # -- engine delegation (kept for workers and tests) -------------------------

    def build_tree(self, interval: IntervalData):
        return self.engine.build_tree(interval)

    def compare_trees(self, tree_a, tree_b, ia, ib, races: RaceSet) -> None:
        self.engine.compare_trees(tree_a, tree_b, ia, ib, races)

    # -- driver ----------------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        """Run the complete offline analysis for this trace."""
        registry = self.obs.registry
        with self.obs.tracer.span("offline", category="offline"):
            t0 = time.perf_counter()
            with self.obs.tracer.span("metadata-scan", category="offline"):
                inventory = IntervalInventory(self.trace)
                pairs = list(inventory.concurrent_pairs())
            self.stats.intervals = len(inventory)
            self.stats.concurrent_pairs = len(pairs)
            self.stats.plan_seconds = time.perf_counter() - t0
            registry.gauge("offline.intervals").set(len(inventory))
            registry.gauge("offline.concurrent_pairs").set(len(pairs))

            races = RaceSet()
            report = self.trace.integrity if self.salvage else None
            # Verdict-table contribution first: synthesised DEFINITE_RACE
            # witnesses exist *instead of* events, so they are part of
            # the race set, not an optimisation.
            self.engine.apply_static_verdicts(races)
            try:
                for ia, ib in pairs:
                    if not self.salvage:
                        self.engine.analyze_pair(ia, ib, races)
                        continue
                    try:
                        self.engine.analyze_pair(ia, ib, races)
                    except Exception as exc:  # salvage must always complete
                        report.pairs_skipped += 1
                        report.note(
                            f"pair ({ia.key.gid},{ia.key.pid},{ia.key.bid}) x "
                            f"({ib.key.gid},{ib.key.pid},{ib.key.bid}) "
                            f"abandoned: {exc}"
                        )
                        registry.counter("offline.pairs_skipped").inc()
            finally:
                self._close()
            if self.salvage:
                salvaged = self.stats.concurrent_pairs - report.pairs_skipped
                registry.counter("offline.intervals_salvaged").inc(
                    len(inventory)
                )
                registry.gauge("offline.pairs_salvaged").set(salvaged)
        self.stats.races_found = len(races)
        return AnalysisResult(races=races, stats=self.stats, integrity=report)

    def _close(self) -> None:
        self.engine.close()


class OfflineAnalyzer(SerialOfflineAnalyzer):
    """Deprecated alias; use :func:`repro.api.analyze` instead."""

    def __init__(self, *args, **kwargs) -> None:
        warn_once(
            "OfflineAnalyzer",
            "OfflineAnalyzer is deprecated; use repro.api.analyze(trace) "
            "(or repro.offline.SerialOfflineAnalyzer)",
        )
        super().__init__(*args, **kwargs)


def analyze_trace(
    path: str | os.PathLike | TraceDir,
    config: OfflineConfig | None = None,
    *,
    options: AnalysisOptions | None = None,
    obs: Instrumentation | None = None,
) -> AnalysisResult:
    """Convenience: open a trace directory and analyze it."""
    return SerialOfflineAnalyzer(
        path, config, obs=obs, options=options
    ).analyze()
