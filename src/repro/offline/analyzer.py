"""The offline race-detection driver (paper §III-B).

Pipeline per trace directory:

1. parse metadata, reconstruct the concurrency structure, plan the
   concurrent interval pairs (:mod:`repro.offline.intervals`);
2. per interval, stream its log chunks and build a summarised interval tree
   (:mod:`repro.itree.builder`) — trees are cached with a bounded LRU so the
   pass stays memory-bounded on large traces;
3. per concurrent pair, walk the smaller tree and probe the larger for
   byte-extent overlaps (``O(M log M)``), refining every candidate with the
   exact Diophantine/ILP check, the mutex-set disjointness test, and the
   write/atomic conditions;
4. deduplicate into :class:`~repro.offline.report.RaceSet` by pc pair.

Steps 2-3 live in the shared :class:`~repro.offline.engine.AnalysisEngine`;
this module is the post-mortem driver around it (the distributed and
streaming drivers are :mod:`repro.offline.parallel` and
:mod:`repro.stream.analyzer`).
"""

from __future__ import annotations

import time

from ..common.config import OfflineConfig
from ..obs import Instrumentation, get_obs
from ..sword.reader import TraceDir
from .engine import (
    AnalysisEngine,
    AnalysisResult,
    AnalysisStats,
    check_node_pair,
)
from .intervals import IntervalData, IntervalInventory
from .report import RaceSet

__all__ = [
    "AnalysisResult",
    "AnalysisStats",
    "OfflineAnalyzer",
    "analyze_trace",
    "check_node_pair",
]


class OfflineAnalyzer:
    """Single-node post-mortem analysis driver."""

    def __init__(
        self,
        trace: TraceDir,
        config: OfflineConfig | None = None,
        obs: Instrumentation | None = None,
    ) -> None:
        self.trace = trace
        self.config = config or OfflineConfig()
        self.obs = obs or get_obs()
        self.engine = AnalysisEngine(trace, self.config, obs=self.obs)

    @property
    def stats(self) -> AnalysisStats:
        return self.engine.stats

    def __enter__(self) -> "OfflineAnalyzer":
        return self

    def __exit__(self, *exc) -> None:
        self._close()

    # -- engine delegation (kept for workers and tests) -------------------------

    def build_tree(self, interval: IntervalData):
        return self.engine.build_tree(interval)

    def compare_trees(self, tree_a, tree_b, ia, ib, races: RaceSet) -> None:
        self.engine.compare_trees(tree_a, tree_b, ia, ib, races)

    # -- driver ----------------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        """Run the complete offline analysis for this trace."""
        registry = self.obs.registry
        with self.obs.tracer.span("offline", category="offline"):
            t0 = time.perf_counter()
            with self.obs.tracer.span("metadata-scan", category="offline"):
                inventory = IntervalInventory(self.trace)
                pairs = list(inventory.concurrent_pairs())
            self.stats.intervals = len(inventory)
            self.stats.concurrent_pairs = len(pairs)
            self.stats.plan_seconds = time.perf_counter() - t0
            registry.gauge("offline.intervals").set(len(inventory))
            registry.gauge("offline.concurrent_pairs").set(len(pairs))

            races = RaceSet()
            try:
                for ia, ib in pairs:
                    self.engine.analyze_pair(ia, ib, races)
            finally:
                self._close()
        self.stats.races_found = len(races)
        return AnalysisResult(races=races, stats=self.stats)

    def _close(self) -> None:
        self.engine.close()


def analyze_trace(
    path, config: OfflineConfig | None = None
) -> AnalysisResult:
    """Convenience: open a trace directory and analyze it."""
    return OfflineAnalyzer(TraceDir(path), config).analyze()
