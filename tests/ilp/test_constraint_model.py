"""The paper's §III-B constraint model and its exact solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SolverError
from repro.ilp.bruteforce import bruteforce_addresses, bruteforce_overlap
from repro.ilp.model import IntervalConstraint, OverlapSystem


class TestIntervalConstraint:
    def test_paper_fields(self):
        c = IntervalConstraint(base=10, stride=8, count=5, size=4)
        assert c.end == 42  # b + (count-1) * stride

    def test_contains(self):
        c = IntervalConstraint(base=10, stride=8, count=5, size=4)
        for addr in (10, 13, 18, 42, 45):
            assert c.contains(addr), addr
        for addr in (9, 14, 17, 46, 100):
            assert not c.contains(addr), addr

    def test_contains_overlapping_elements(self):
        # size > stride: elements overlap; every byte in [0, 9] is covered.
        c = IntervalConstraint(base=0, stride=2, count=4, size=4)
        for addr in range(0, 10):
            assert c.contains(addr)
        assert not c.contains(10)

    def test_contains_matches_bruteforce(self):
        c = IntervalConstraint(base=3, stride=7, count=6, size=3)
        addresses = bruteforce_addresses(c)
        for addr in range(0, 60):
            assert c.contains(addr) == (addr in addresses)

    def test_validation(self):
        with pytest.raises(SolverError):
            IntervalConstraint(base=0, stride=1, count=0, size=1)
        with pytest.raises(SolverError):
            IntervalConstraint(base=0, stride=0, count=2, size=1)
        with pytest.raises(SolverError):
            IntervalConstraint(base=0, stride=1, count=1, size=0)

    def test_pretty_renders_paper_form(self):
        c = IntervalConstraint(base=10, stride=8, count=5, size=4)
        text = c.pretty("x_0", "s_0")
        assert "8·x_0 + 10 + s_0 = a" in text
        assert "0 ≤ s_0 < 4" in text


class TestOverlapSystem:
    def test_figure4_non_overlap(self):
        """Fig. 4: byte extents intersect, but no byte is shared."""
        t0 = IntervalConstraint(base=10, stride=8, count=5, size=4)
        t1 = IntervalConstraint(base=14, stride=8, count=5, size=4)
        system = OverlapSystem(t0, t1)
        assert not system.feasible()

    def test_shifted_overlap(self):
        t0 = IntervalConstraint(base=10, stride=8, count=5, size=4)
        t1 = IntervalConstraint(base=12, stride=8, count=5, size=4)
        witness = OverlapSystem(t0, t1).solve()
        assert witness is not None
        assert t0.contains(witness.address)
        assert t1.contains(witness.address)

    def test_singleton_vs_progression(self):
        point = IntervalConstraint(base=26, stride=1, count=1, size=1)
        prog = IntervalConstraint(base=10, stride=8, count=5, size=4)
        assert OverlapSystem(point, prog).feasible()
        miss = IntervalConstraint(base=30, stride=1, count=1, size=1)
        assert not OverlapSystem(miss, prog).feasible()

    def test_pretty_shows_both_systems(self):
        t0 = IntervalConstraint(base=10, stride=8, count=5, size=4)
        t1 = IntervalConstraint(base=14, stride=8, count=5, size=4)
        text = OverlapSystem(t0, t1).pretty()
        assert "T_0" in text and "T_1" in text

    @settings(max_examples=400, deadline=None)
    @given(
        b0=st.integers(0, 80), d0=st.integers(1, 14),
        n0=st.integers(1, 10), z0=st.sampled_from([1, 2, 4, 8]),
        b1=st.integers(0, 80), d1=st.integers(1, 14),
        n1=st.integers(1, 10), z1=st.sampled_from([1, 2, 4, 8]),
    )
    def test_property_matches_bruteforce(self, b0, d0, n0, z0, b1, d1, n1, z1):
        c0 = IntervalConstraint(base=b0, stride=d0, count=n0, size=z0)
        c1 = IntervalConstraint(base=b1, stride=d1, count=n1, size=z1)
        witness = OverlapSystem(c0, c1).solve()
        brute = bruteforce_overlap(c0, c1)
        assert (witness is not None) == (brute is not None)
        if witness is not None:
            assert c0.contains(witness.address)
            assert c1.contains(witness.address)
