"""SolverMemo is a transparent, translation-keyed drop-in for the solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import SolverMemo, intervals_share_address
from repro.itree import StridedInterval


def interval(low, stride=1, size=1, count=1):
    return StridedInterval(
        low=low, stride=stride, size=size, count=count,
        is_write=True, is_atomic=False, pc=0, msid=0,
    )


intervals_st = st.builds(
    interval,
    low=st.integers(min_value=0, max_value=300),
    stride=st.integers(min_value=1, max_value=16),
    size=st.integers(min_value=1, max_value=8),
    count=st.integers(min_value=1, max_value=8),
)


@settings(max_examples=500, deadline=None)
@given(intervals_st, intervals_st)
def test_memo_matches_direct_solver(a, b):
    memo = SolverMemo()
    direct = intervals_share_address(a, b)
    cached = memo.share_address(a, b)
    if direct is None:
        assert cached is None
    else:
        assert cached is not None
        assert cached.address == direct.address
    # Second call must return the exact same answer from the table.
    again = memo.share_address(a, b)
    assert (again is None) == (cached is None)
    if again is not None:
        assert again.address == cached.address


def test_memo_hits_on_translated_pairs():
    """One solve serves every translated copy of the constraint shape."""
    memo = SolverMemo()
    base_a = interval(0, stride=8, size=4, count=10)
    base_b = interval(4, stride=8, size=4, count=10)
    first = memo.share_address(base_a, base_b)
    assert memo.misses == 1 and memo.hits == 0
    for shift in (64, 128, 1 << 20):
        a = interval(base_a.low + shift, stride=8, size=4, count=10)
        b = interval(base_b.low + shift, stride=8, size=4, count=10)
        shifted = memo.share_address(a, b)
        # Translation invariance: same verdict, witness shifts along.
        direct = intervals_share_address(a, b)
        assert (shifted is None) == (direct is None)
        if shifted is not None:
            assert shifted.address == direct.address
    assert memo.misses == 1
    assert memo.hits == 3
    assert first is None  # disjoint residue classes never meet


def test_trivial_fast_paths_skip_the_table():
    memo = SolverMemo()
    # Disjoint extents.
    assert memo.share_address(interval(0, size=4), interval(100, size=4)) is None
    # Both dense.
    r = memo.share_address(
        interval(0, size=8, stride=1, count=8),
        interval(4, size=8, stride=1, count=8),
    )
    assert r is not None and r.address == 4
    assert memo.hits == 0 and memo.misses == 0
    assert len(memo) == 0


def test_capacity_is_bounded():
    memo = SolverMemo(capacity=4)
    for i in range(20):
        a = interval(0, stride=8 + i, size=4, count=5)
        b = interval(2, stride=8 + i, size=4, count=5)
        memo.share_address(a, b)
    assert len(memo) <= 4
    assert memo.misses == 20


def test_ordered_key_is_not_orientation_canonicalized():
    """Witness addresses depend on argument order; so must the memo."""
    memo = SolverMemo()
    a = interval(0, stride=6, size=2, count=10)
    b = interval(4, stride=6, size=2, count=10)
    ab = memo.share_address(a, b)
    ba = memo.share_address(b, a)
    direct_ab = intervals_share_address(a, b)
    direct_ba = intervals_share_address(b, a)
    assert (ab is None) == (direct_ab is None)
    assert (ba is None) == (direct_ba is None)
    if ab is not None:
        assert ab.address == direct_ab.address
    if ba is not None:
        assert ba.address == direct_ba.address
