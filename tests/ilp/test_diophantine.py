"""Exact bounded Diophantine solving, cross-checked against brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SolverError
from repro.ilp.diophantine import (
    ext_gcd,
    progressions_intersect,
    solve_bounded,
)


class TestExtGcd:
    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_bezout_identity(self, a, b):
        g, u, v = ext_gcd(a, b)
        assert a * u + b * v == g
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0

    def test_zero_cases(self):
        assert ext_gcd(0, 0)[0] == 0
        assert ext_gcd(0, 7)[0] == 7
        assert ext_gcd(-12, 18)[0] == 6


class TestSolveBounded:
    def test_simple_feasible(self):
        sol = solve_bounded(8, 8, 0, 10, 10)
        assert sol is not None
        assert 8 * sol.x - 8 * sol.y == 0

    def test_gcd_infeasible(self):
        # 4x - 6y is always even; c = 3 unreachable.
        assert solve_bounded(4, 6, 3, 100, 100) is None

    def test_bounds_infeasible(self):
        # 8x - 8y = 8 needs x = y + 1 but x is capped at 0.
        assert solve_bounded(8, 8, 8, 0, 100) is None

    def test_bounds_tight_feasible(self):
        sol = solve_bounded(8, 8, 8, 1, 0)
        assert sol is not None and sol.x == 1 and sol.y == 0

    def test_rejects_nonpositive_strides(self):
        with pytest.raises(SolverError):
            solve_bounded(0, 8, 0, 1, 1)
        with pytest.raises(SolverError):
            solve_bounded(8, -8, 0, 1, 1)
        with pytest.raises(SolverError):
            solve_bounded(8, 8, 0, -1, 1)

    @settings(max_examples=400, deadline=None)
    @given(
        p=st.integers(1, 30),
        q=st.integers(1, 30),
        c=st.integers(-200, 200),
        x_max=st.integers(0, 25),
        y_max=st.integers(0, 25),
    )
    def test_matches_enumeration(self, p, q, c, x_max, y_max):
        expected = any(
            p * x - q * y == c
            for x in range(x_max + 1)
            for y in range(y_max + 1)
        )
        sol = solve_bounded(p, q, c, x_max, y_max)
        assert (sol is not None) == expected
        if sol is not None:
            assert p * sol.x - q * sol.y == c
            assert 0 <= sol.x <= x_max and 0 <= sol.y <= y_max

    def test_large_values_exact(self):
        # Far beyond float precision: exact integer arithmetic required.
        big = 10**15
        sol = solve_bounded(big + 1, big, big + 1, 10**6, 10**6)
        assert sol is not None
        assert (big + 1) * sol.x - big * sol.y == big + 1


class TestProgressionsIntersect:
    def test_shared_element(self):
        hit = progressions_intersect(0, 6, 10, 9, 3, 10)
        assert hit is not None
        value, i, j = hit
        assert value == 0 + 6 * i == 9 + 3 * j

    def test_disjoint_progressions(self):
        # Evens starting at 0 vs odds starting at 1.
        assert progressions_intersect(0, 2, 50, 1, 2, 50) is None

    def test_singletons(self):
        assert progressions_intersect(5, 0, 1, 5, 0, 1) is not None
        assert progressions_intersect(5, 0, 1, 6, 0, 1) is None

    def test_invalid_counts(self):
        with pytest.raises(SolverError):
            progressions_intersect(0, 1, 0, 0, 1, 1)

    @settings(max_examples=200, deadline=None)
    @given(
        b0=st.integers(0, 60), s0=st.integers(1, 12), n0=st.integers(1, 12),
        b1=st.integers(0, 60), s1=st.integers(1, 12), n1=st.integers(1, 12),
    )
    def test_matches_set_intersection(self, b0, s0, n0, b1, s1, n1):
        set0 = {b0 + s0 * i for i in range(n0)}
        set1 = {b1 + s1 * j for j in range(n1)}
        hit = progressions_intersect(b0, s0, n0, b1, s1, n1)
        assert (hit is not None) == bool(set0 & set1)
        if hit is not None:
            assert hit[0] in set0 and hit[0] in set1
