"""Race-oriented overlap glue between interval trees and the solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.bruteforce import bruteforce_overlap
from repro.ilp.overlap import constraint_of, intervals_share_address
from repro.itree.interval import StridedInterval


def si(low, stride, size, count, **kw):
    defaults = dict(is_write=False, is_atomic=False, pc=0, msid=0)
    defaults.update(kw)
    return StridedInterval(low=low, stride=stride, size=size, count=count, **defaults)


def test_disjoint_extents_fast_path():
    a = si(0, 8, 8, 4)
    b = si(1000, 8, 8, 4)
    assert intervals_share_address(a, b) is None


def test_dense_fast_path_no_solver():
    a = si(0, 8, 8, 10)       # dense: stride == size
    b = si(40, 8, 8, 10)
    hit = intervals_share_address(a, b)
    assert hit is not None
    assert hit.address == 40


def test_figure4_interleaved_strides_do_not_share():
    a = si(10, 8, 4, 5)
    b = si(14, 8, 4, 5)
    assert a.extent_overlaps(b)
    assert intervals_share_address(a, b) is None


def test_strided_sharing_found():
    a = si(0, 12, 4, 10)
    b = si(24, 8, 4, 10)
    hit = intervals_share_address(a, b)
    assert hit is not None


def test_constraint_of_singleton():
    c = constraint_of(si(100, 8, 8, 1))
    assert c.count == 1 and c.size == 8 and c.base == 100


@settings(max_examples=300, deadline=None)
@given(
    lo_a=st.integers(0, 64), str_a=st.integers(1, 12),
    sz_a=st.sampled_from([1, 2, 4, 8]), n_a=st.integers(1, 8),
    lo_b=st.integers(0, 64), str_b=st.integers(1, 12),
    sz_b=st.sampled_from([1, 2, 4, 8]), n_b=st.integers(1, 8),
)
def test_property_share_address_matches_bruteforce(
    lo_a, str_a, sz_a, n_a, lo_b, str_b, sz_b, n_b
):
    a = si(lo_a, str_a, sz_a, n_a)
    b = si(lo_b, str_b, sz_b, n_b)
    got = intervals_share_address(a, b)
    brute = bruteforce_overlap(constraint_of(a), constraint_of(b))
    assert (got is not None) == (brute is not None)
    if got is not None:
        assert constraint_of(a).contains(got.address)
        assert constraint_of(b).contains(got.address)
