"""Tasking in the runtime: execution, taskwait, barriers, nesting."""

import numpy as np
import pytest

from repro.common.errors import RuntimeModelError
from repro.omp import OpenMPRuntime, RecordingTool
from repro.tasking.graph import decode_point

from conftest import run_program


def test_tasks_complete_by_region_end():
    values = {}

    def program(m):
        out = m.alloc_array("out", 8)

        def work(ctx, i):
            ctx.write(out, i, float(i) * 2)

        def body(ctx):
            if ctx.tid == 0:
                for i in range(8):
                    ctx.task(work, i)
        m.parallel(body, nthreads=4)
        values["out"] = m.data(out).copy()

    run_program(program)
    assert list(values["out"]) == [i * 2.0 for i in range(8)]


def test_taskwait_completes_children_before_continuing():
    order = []

    def program(m):
        x = m.alloc_scalar("x")

        def child(ctx):
            order.append("child")
            ctx.write(x, 0, 1.0)

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(child)
                ctx.taskwait()
                order.append("after-wait")
                assert ctx.read(x, 0) == 1.0
        m.parallel(body, nthreads=2)

    run_program(program)
    assert order == ["child", "after-wait"]


def test_tasks_may_run_on_other_members():
    executors = set()

    def program(m):
        def work(ctx):
            executors.add(ctx.gid)

        def body(ctx):
            if ctx.tid == 0:
                for _ in range(16):
                    ctx.task(work)
            ctx.barrier()
        m.parallel(body, nthreads=4)

    run_program(program, seed=3)
    assert executors, "tasks must have executed"


def test_nested_task_creation():
    ran = []

    def program(m):
        def grandchild(ctx):
            ran.append("grandchild")

        def child(ctx):
            ran.append("child")
            ctx.task(grandchild)

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(child)
        m.parallel(body, nthreads=2)

    run_program(program)
    assert sorted(ran) == ["child", "grandchild"]


def test_task_points_tagged_on_accesses():
    tool = RecordingTool()

    def program(m):
        x = m.alloc_array("x", 4)

        def work(ctx):
            ctx.write(x, 1, 1.0)

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(x, 0, 1.0)   # implicit, seq 0
                ctx.task(work)         # bumps creator seq
                ctx.write(x, 2, 1.0)   # implicit, seq 1
        m.parallel(body, nthreads=2)

    run_program(program, tool=tool)
    points = {
        int(e.access.addr): decode_point(e.access.task_point)
        for e in tool.accesses()
    }
    addrs = sorted(points)
    assert points[addrs[0]] == (0, 0)          # before creation
    assert points[addrs[1]][0] > 0             # inside the task entity
    assert points[addrs[2]] == (0, 1)          # after creation


def test_barrier_inside_task_rejected():
    def program(m):
        def bad(ctx):
            ctx.barrier()

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(bad)
        m.parallel(body, nthreads=2)

    with pytest.raises(RuntimeModelError):
        run_program(program)


def test_nested_parallel_inside_task_rejected():
    def program(m):
        def bad(ctx):
            ctx.parallel(lambda c: None, nthreads=2)

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(bad)
            ctx.barrier()
        m.parallel(body, nthreads=2)

    with pytest.raises(RuntimeModelError):
        run_program(program)


def test_taskwait_records_wait_seq():
    tool = RecordingTool()

    def program(m):
        def child(ctx):
            pass

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(child)
                ctx.taskwait()
        m.parallel(body, nthreads=2)

    run_program(program, tool=tool)
    (info,) = tool.task_graph.tasks()
    assert info.wait_seq is not None
    assert info.create_seq < info.wait_seq


def test_unwaited_task_has_no_wait_seq():
    tool = RecordingTool()

    def program(m):
        def child(ctx):
            pass

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(child)
        m.parallel(body, nthreads=2)

    run_program(program, tool=tool)
    (info,) = tool.task_graph.tasks()
    assert info.wait_seq is None
