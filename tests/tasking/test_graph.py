"""Task-ordering graph: the judgment itself, in isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasking.graph import (
    IMPLICIT,
    TaskGraph,
    TaskInfo,
    decode_point,
    encode_point,
)


def task(graph, task_id, *, creator=IMPLICIT, creator_gid=0, e=0, w=None):
    graph.add(
        TaskInfo(
            task_id=task_id,
            creator=creator,
            creator_gid=creator_gid,
            pid=1,
            bid=0,
            create_seq=e,
            wait_seq=w,
        )
    )
    return task_id


class TestEncoding:
    def test_roundtrip(self):
        aux = encode_point(42, 1234)
        assert decode_point(aux) == (42, 1234)

    def test_zero_is_implicit_origin(self):
        assert decode_point(0) == (0, 0)

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            encode_point(1, -1)

    @given(st.integers(0, 2**30), st.integers(0, 2**24 - 1))
    def test_property_roundtrip(self, entity, seq):
        assert decode_point(encode_point(entity, seq)) == (entity, seq)


class TestRegistration:
    def test_duplicate_rejected(self):
        g = TaskGraph()
        task(g, 1)
        with pytest.raises(ValueError):
            task(g, 1)

    def test_zero_reserved(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            task(g, 0)

    def test_json_roundtrip(self):
        g = TaskGraph()
        task(g, 1, creator_gid=3, e=2)
        task(g, 2, creator=1, e=0, w=1)
        loaded = TaskGraph.from_json(g.to_json())
        assert len(loaded) == 2
        assert loaded.get(2).creator == 1
        assert loaded.get(2).wait_seq == 1
        assert loaded.get(1).wait_seq is None


class TestOrdering:
    def test_creation_orders_creator_prefix_before_task(self):
        g = TaskGraph()
        task(g, 1, creator_gid=0, e=3)
        # Creator points at seq <= 3 are before the task...
        assert g.ordered(IMPLICIT, 2, 0, 1, 0, 9)
        assert g.ordered(IMPLICIT, 3, 0, 1, 5, 9)
        # ... later creator points are not.
        assert not g.ordered(IMPLICIT, 4, 0, 1, 0, 9)
        # Task is never before its creator without a wait.
        assert not g.ordered(1, 0, 9, IMPLICIT, 100, 0)

    def test_wait_orders_task_before_creator_suffix(self):
        g = TaskGraph()
        task(g, 1, creator_gid=0, e=0, w=2)
        assert g.ordered(1, 7, 9, IMPLICIT, 2, 0)
        assert not g.ordered(1, 7, 9, IMPLICIT, 1, 0)

    def test_other_threads_unordered(self):
        g = TaskGraph()
        task(g, 1, creator_gid=0, e=0)
        assert g.concurrent(1, 0, 9, IMPLICIT, 0, 5)
        assert g.concurrent(IMPLICIT, 0, 5, 1, 0, 9)

    def test_sibling_tasks_same_epoch_concurrent(self):
        g = TaskGraph()
        task(g, 1, e=0)
        task(g, 2, e=1)
        assert g.concurrent(1, 0, 9, 2, 0, 8)

    def test_wait_separated_siblings_ordered(self):
        g = TaskGraph()
        task(g, 1, e=0, w=1)      # waited at seq 1
        task(g, 2, e=1)           # created at seq 1 (after the wait)
        assert g.ordered(1, 5, 9, 2, 0, 8)
        assert not g.concurrent(1, 5, 9, 2, 0, 8)

    def test_nested_task_chains(self):
        g = TaskGraph()
        task(g, 1, creator_gid=0, e=0)        # created by implicit(0)
        task(g, 2, creator=1, e=3)            # created by task 1 at seq 3
        # Implicit(0) before creation of 1 -> before 2 as well.
        assert g.ordered(IMPLICIT, 0, 0, 2, 0, 9)
        # Task 1's points up to seq 3 precede task 2.
        assert g.ordered(1, 3, 9, 2, 0, 9)
        assert not g.ordered(1, 4, 9, 2, 0, 9)

    def test_transitive_wait_then_create(self):
        g = TaskGraph()
        task(g, 1, creator_gid=0, e=0, w=1)
        task(g, 2, creator_gid=0, e=2)
        # 1 ends at (imp0, 1); 2 starts at (imp0, 2): 1 before 2.
        assert g.ordered(1, 0, 9, 2, 0, 8)

    def test_same_entity_never_concurrent(self):
        g = TaskGraph()
        task(g, 1)
        assert not g.concurrent(1, 0, 9, 1, 5, 9)
        assert not g.concurrent(IMPLICIT, 0, 3, IMPLICIT, 9, 3)

    def test_concurrent_is_symmetric(self):
        g = TaskGraph()
        task(g, 1, e=1)
        cases = [
            ((1, 0, 9), (IMPLICIT, 0, 0)),
            ((1, 0, 9), (IMPLICIT, 2, 0)),
            ((IMPLICIT, 0, 7), (1, 3, 2)),
        ]
        for (ea, sa, ga), (eb, sb, gb) in cases:
            assert g.concurrent(ea, sa, ga, eb, sb, gb) == g.concurrent(
                eb, sb, gb, ea, sa, ga
            )


@settings(max_examples=80, deadline=None)
@given(
    creations=st.lists(
        st.tuples(st.integers(0, 4), st.booleans()),  # (create_seq, waited?)
        min_size=1,
        max_size=6,
    ),
    pa=st.tuples(st.integers(0, 7), st.integers(0, 6)),
    pb=st.tuples(st.integers(0, 7), st.integers(0, 6)),
)
def test_property_ordered_is_antisymmetric_across_entities(creations, pa, pb):
    """For distinct points, ordered() can hold in at most one direction."""
    g = TaskGraph()
    for i, (e, waited) in enumerate(creations, start=1):
        task(g, i, e=e, w=(e + 1) if waited else None)
    ids = [0] + list(range(1, len(creations) + 1))
    ent_a = ids[pa[0] % len(ids)]
    ent_b = ids[pb[0] % len(ids)]
    a = (ent_a, pa[1], 0)
    b = (ent_b, pb[1], 0)
    if (ent_a, pa[1]) == (ent_b, pb[1]):
        return
    fwd = g.ordered(*a, *b)
    back = g.ordered(*b, *a)
    assert not (fwd and back), "both directions ordered: cycle in the graph"
