"""End-to-end race detection with tasks: SWORD+extension vs oracle vs ARCHER."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.archer import ArcherTool
from repro.common.config import ArcherConfig, RunConfig, SchedulerConfig
from repro.common.sourceloc import pc_of
from repro.omp import OpenMPRuntime

from conftest import sword_and_oracle


def check(program, trace_dir, *, nthreads=4, seed=0):
    races, oracle, _rec, _rt = sword_and_oracle(
        program, trace_dir, nthreads=nthreads, seed=seed
    )
    assert races.pc_pairs() == oracle.pc_pairs(), (
        f"sword={sorted(races.pc_pairs())} oracle={sorted(oracle.pc_pairs())}"
    )
    return races


def test_sibling_tasks_race(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def t1(ctx):
            ctx.write(x, 0, 1.0, pc=pc_of("tr.c", 1))

        def t2(ctx):
            ctx.write(x, 0, 2.0, pc=pc_of("tr.c", 2))

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(t1)
                ctx.task(t2)
        m.parallel(body, nthreads=2)

    assert len(check(program, trace_dir)) == 1


def test_creation_point_orders_prior_code(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def reader(ctx):
            ctx.read(x, 0, pc=pc_of("tr.c", 11))

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(x, 0, 1.0, pc=pc_of("tr.c", 10))  # before creation
                ctx.task(reader)
        m.parallel(body, nthreads=2)

    assert len(check(program, trace_dir)) == 0


def test_creator_code_after_creation_races(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def reader(ctx):
            ctx.read(x, 0, pc=pc_of("tr.c", 21))

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(reader)
                ctx.write(x, 0, 2.0, pc=pc_of("tr.c", 22))  # after creation
        m.parallel(body, nthreads=2)

    assert len(check(program, trace_dir)) == 1


def test_taskwait_restores_order(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def writer(ctx):
            ctx.write(x, 0, 1.0, pc=pc_of("tr.c", 31))

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(writer)
                ctx.taskwait()
                ctx.read(x, 0, pc=pc_of("tr.c", 33))
        m.parallel(body, nthreads=2)

    assert len(check(program, trace_dir)) == 0


def test_wait_separated_task_generations(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def gen1(ctx):
            ctx.write(x, 0, 1.0, pc=pc_of("tr.c", 41))

        def gen2(ctx):
            ctx.write(x, 0, 2.0, pc=pc_of("tr.c", 42))

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(gen1)
                ctx.taskwait()
                ctx.task(gen2)
        m.parallel(body, nthreads=2)

    assert len(check(program, trace_dir)) == 0


def test_tasks_bounded_by_barrier(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def writer(ctx):
            ctx.write(x, 0, 1.0, pc=pc_of("tr.c", 51))

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(writer)
            ctx.barrier()
            ctx.read(x, 0, pc=pc_of("tr.c", 54))
        m.parallel(body, nthreads=3)

    assert len(check(program, trace_dir)) == 0


def test_task_races_with_other_threads(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def writer(ctx):
            ctx.write(x, 0, 1.0, pc=pc_of("tr.c", 61))

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(writer)
            else:
                ctx.read(x, 0, pc=pc_of("tr.c", 64))
        m.parallel(body, nthreads=3)

    assert len(check(program, trace_dir)) == 1


def test_locked_tasks_do_not_race(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def t1(ctx):
            with ctx.critical("x"):
                ctx.write(x, 0, 1.0, pc=pc_of("tr.c", 71))

        def t2(ctx):
            with ctx.critical("x"):
                ctx.write(x, 0, 2.0, pc=pc_of("tr.c", 72))

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(t1)
                ctx.task(t2)
        m.parallel(body, nthreads=2)

    assert len(check(program, trace_dir)) == 0


def test_nested_tasks_ordering(trace_dir):
    def program(m):
        x = m.alloc_scalar("x")

        def grandchild(ctx):
            ctx.read(x, 0, pc=pc_of("tr.c", 81))

        def child(ctx):
            ctx.write(x, 0, 1.0, pc=pc_of("tr.c", 82))  # before grandchild
            ctx.task(grandchild)

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(child)
        m.parallel(body, nthreads=2)

    # child's write precedes the grandchild's creation: ordered, no race.
    assert len(check(program, trace_dir)) == 0


def test_archer_with_task_edges_also_detects(trace_dir):
    """Both detectors see creator-vs-task races once tasks are first-class:
    our ARCHER models tasks as lightweight threads (TSan's approach), so
    the race is caught even when the creator executes its own task.  The
    §III-C contrast is about tools *without* task identity — covered by
    the runtime test showing the naive same-thread view would order the
    accesses."""

    def program(m):
        x = m.alloc_scalar("x")

        def reader(ctx):
            ctx.read(x, 0, pc=pc_of("tr.c", 91))

        def body(ctx):
            if ctx.tid == 0:
                ctx.task(reader)
                ctx.write(x, 0, 2.0, pc=pc_of("tr.c", 92))
        m.parallel(body, nthreads=2)

    races = check(program, trace_dir, seed=0)
    assert len(races) == 1

    for seed in range(4):
        archer = ArcherTool(ArcherConfig())
        rt = OpenMPRuntime(
            RunConfig(nthreads=2, scheduler=SchedulerConfig(seed=seed)),
            tool=archer,
        )
        rt.run(program)
        assert archer.race_count == 1


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["task_w", "task_r", "write", "read", "wait"]),
            st.integers(0, 3),  # target index
        ),
        min_size=1,
        max_size=8,
    ),
    seed=st.integers(0, 2),
)
def test_property_task_programs_match_oracle(ops, seed):
    """Random task/wait/access sequences: analyzer == oracle, always."""
    import shutil
    import tempfile

    def program(m):
        arr = m.alloc_array("arr", 4)

        def t_writer(ctx, i, site):
            ctx.write(arr, i, 1.0, pc=pc_of("gen-task.c", site))

        def t_reader(ctx, i, site):
            ctx.read(arr, i, pc=pc_of("gen-task.c", site))

        def body(ctx):
            if ctx.tid != 0:
                return
            for site, (kind, idx) in enumerate(ops):
                if kind == "task_w":
                    ctx.task(t_writer, idx, 100 + site)
                elif kind == "task_r":
                    ctx.task(t_reader, idx, 200 + site)
                elif kind == "write":
                    ctx.write(arr, idx, 2.0, pc=pc_of("gen-task.c", 300 + site))
                elif kind == "read":
                    ctx.read(arr, idx, pc=pc_of("gen-task.c", 400 + site))
                else:
                    ctx.taskwait()
        m.parallel(body, nthreads=3)

    tmp = tempfile.mkdtemp(prefix="taskprop-")
    try:
        races, oracle, _rec, _rt = sword_and_oracle(
            program, tmp, nthreads=3, seed=seed
        )
        assert races.pc_pairs() == oracle.pc_pairs()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
