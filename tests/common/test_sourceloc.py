"""Program-counter interning."""

from repro.common.sourceloc import GLOBAL_PCS, PCRegistry, SourceLoc, pc_of


def test_interning_is_stable():
    reg = PCRegistry()
    loc = SourceLoc("a.c", 10, "f")
    pc1 = reg.pc(loc)
    pc2 = reg.pc(SourceLoc("a.c", 10, "f"))
    assert pc1 == pc2
    assert reg.loc(pc1) == loc


def test_distinct_locations_get_distinct_pcs():
    reg = PCRegistry()
    a = reg.pc(SourceLoc("a.c", 10))
    b = reg.pc(SourceLoc("a.c", 11))
    c = reg.pc(SourceLoc("b.c", 10))
    assert len({a, b, c}) == 3
    assert len(reg) == 3


def test_unknown_pc_resolves_to_marker():
    reg = PCRegistry()
    assert reg.loc(0xDEAD).file == "<unknown>"


def test_global_helper():
    pc = pc_of("file.c", 5, "g")
    assert GLOBAL_PCS.loc(pc) == SourceLoc("file.c", 5, "g")


def test_str_formats():
    assert str(SourceLoc("x.c", 3, "h")) == "x.c:3 (h)"
    assert str(SourceLoc("x.c", 3)) == "x.c:3"
