"""Event record model and binary codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.events import (
    EVENT_BYTES,
    EVENT_DTYPE,
    KIND_ACCESS,
    KIND_BARRIER,
    Access,
    access_to_record,
    accesses_to_records,
    bytes_to_records,
    make_event,
    record_to_access,
    records_to_bytes,
)


def test_record_layout_is_fixed_width():
    assert EVENT_DTYPE.itemsize == EVENT_BYTES == 40


def test_scalar_access_geometry():
    a = Access(addr=100, size=8, count=1, stride=0, is_write=True,
               is_atomic=False, pc=1)
    assert a.low == 100
    assert a.high == 107
    assert a.last_addr == 100


def test_bulk_access_geometry():
    a = Access(addr=100, size=4, count=5, stride=8, is_write=False,
               is_atomic=False, pc=1)
    assert a.low == 100
    assert a.last_addr == 132
    assert a.high == 135
    assert list(a.addresses()[:4]) == [100, 101, 102, 103]
    assert a.addresses().shape[0] == 20


def test_negative_stride_normalisation():
    a = Access(addr=132, size=4, count=5, stride=-8, is_write=True,
               is_atomic=False, pc=1)
    n = a.normalized()
    assert n.stride == 8
    assert n.addr == 100
    assert set(n.addresses()) == set(a.addresses())


def test_access_validation():
    with pytest.raises(ValueError):
        Access(addr=0, size=8, count=0, stride=0, is_write=True,
               is_atomic=False, pc=0)
    with pytest.raises(ValueError):
        Access(addr=0, size=0, count=1, stride=0, is_write=True,
               is_atomic=False, pc=0)
    with pytest.raises(ValueError):
        Access(addr=0, size=8, count=2, stride=0, is_write=True,
               is_atomic=False, pc=0)


@given(
    addr=st.integers(0, 2**48),
    size=st.sampled_from([1, 2, 4, 8]),
    count=st.integers(1, 1000),
    stride=st.integers(1, 64),
    is_write=st.booleans(),
    is_atomic=st.booleans(),
    pc=st.integers(0, 2**40),
    msid=st.integers(0, 2**20),
)
def test_record_roundtrip(addr, size, count, stride, is_write, is_atomic, pc, msid):
    a = Access(addr=addr, size=size, count=count,
               stride=stride if count > 1 else 0,
               is_write=is_write, is_atomic=is_atomic, pc=pc, msid=msid)
    rec = access_to_record(a)
    back = record_to_access(rec)
    assert back == a


def test_bytes_roundtrip():
    accesses = [
        Access(addr=i * 8, size=8, count=1, stride=0, is_write=i % 2 == 0,
               is_atomic=False, pc=i)
        for i in range(10)
    ]
    records = accesses_to_records(accesses)
    raw = records_to_bytes(records)
    assert len(raw) == 10 * EVENT_BYTES
    back = bytes_to_records(raw)
    assert (back == records).all()


def test_bytes_roundtrip_rejects_misaligned():
    with pytest.raises(ValueError):
        bytes_to_records(b"x" * 41)


def test_make_event_kinds():
    rec = make_event(KIND_BARRIER, addr=7, aux=3)
    assert int(rec["kind"]) == KIND_BARRIER
    assert int(rec["addr"]) == 7
    assert int(rec["aux"]) == 3
    with pytest.raises(ValueError):
        record_to_access(rec)


def test_record_to_access_requires_access_kind():
    rec = np.zeros((), dtype=EVENT_DTYPE)
    rec["kind"] = KIND_ACCESS
    rec["size"] = 8
    rec["count"] = 1
    a = record_to_access(rec[()])
    assert a.size == 8
