"""Configuration validation and paper constants."""

import pytest

from repro.common.config import (
    MiB,
    ArcherConfig,
    NodeConfig,
    OfflineConfig,
    RunConfig,
    SchedulerConfig,
    SWORD_AUX_BYTES,
    SWORD_BUFFER_BYTES,
    SWORD_BUFFER_EVENTS,
    SwordConfig,
)
from repro.common.errors import ConfigError


def test_paper_constants():
    assert SWORD_BUFFER_EVENTS == 25_000
    assert SWORD_BUFFER_BYTES == 2 * MiB
    # "around 1.3 MB" of auxiliary TLS.
    assert abs(SWORD_AUX_BYTES - 1.3 * MiB) < 0.01 * MiB


def test_sword_per_thread_is_about_3_3_mb():
    cfg = SwordConfig(log_dir="/tmp/x")
    assert abs(cfg.per_thread_bytes - 3.3 * MiB) < 0.05 * MiB


def test_sword_requires_log_dir():
    with pytest.raises(ConfigError):
        SwordConfig().validate()


def test_scheduler_policy_validation():
    with pytest.raises(ConfigError):
        SchedulerConfig(policy="fifo").validate()
    SchedulerConfig(policy="round-robin").validate()
    with pytest.raises(ConfigError):
        SchedulerConfig(yield_every=-1).validate()


def test_archer_shadow_validation():
    with pytest.raises(ConfigError):
        ArcherConfig(shadow_cells=0).validate()
    with pytest.raises(ConfigError):
        ArcherConfig(shadow_word_bytes=3).validate()
    ArcherConfig().validate()


def test_node_and_offline_validation():
    with pytest.raises(ConfigError):
        NodeConfig(memory_limit=0).validate()
    with pytest.raises(ConfigError):
        OfflineConfig(workers=0).validate()
    with pytest.raises(ConfigError):
        RunConfig(nthreads=0).validate()
    RunConfig().validate()
