"""The repro.api facade covers every flow; legacy entry points warn."""

import json
from pathlib import Path

import pytest

import repro.api as api
from repro.common import deprecation
from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.offline import OfflineAnalyzer, ParallelOfflineAnalyzer, analyze_trace
from repro.omp import OpenMPRuntime
from repro.stream import StreamingAnalyzer
from repro.sword import SwordTool, TraceDir
from repro.workloads import REGISTRY

WORKLOAD = "plusplus-orig-yes"
NTHREADS = 2


def blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


@pytest.fixture()
def trace_dir(tmp_path):
    trace = tmp_path / "trace"
    workload = REGISTRY.get(WORKLOAD)
    tool = SwordTool(SwordConfig(log_dir=str(trace)))
    rt = OpenMPRuntime(
        RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=0)),
        tool=tool,
    )
    rt.run(lambda m: workload.run_program(m))
    return trace


# -- detect --------------------------------------------------------------------


def test_detect_by_name():
    result = api.detect(WORKLOAD, tool="sword", nthreads=NTHREADS)
    assert result.tool == "sword"
    assert result.race_count == 2


def test_detect_workload_instance():
    result = api.detect(REGISTRY.get(WORKLOAD), tool="sword", nthreads=NTHREADS)
    assert result.race_count == 2


def test_detect_unknown_workload():
    with pytest.raises(KeyError):
        api.detect("no-such-workload")


def test_detect_other_tools():
    assert api.detect(WORKLOAD, tool="baseline", nthreads=NTHREADS).races is None
    assert api.detect(WORKLOAD, tool="archer", nthreads=NTHREADS).race_count == 2


def test_detect_forwards_analysis_options(tmp_path):
    opts = api.AnalysisOptions(
        fastpath=api.FastPathOptions(enabled=True, result_cache=True)
    )
    result = api.detect(
        WORKLOAD,
        nthreads=NTHREADS,
        options=opts,
        trace_dir=str(tmp_path / "t"),
        keep_trace=True,
    )
    assert result.race_count == 2
    assert (tmp_path / "t" / ".sword-cache").is_dir()


# -- analyze -------------------------------------------------------------------


def test_analyze_modes_byte_identical(trace_dir):
    serial = api.analyze(trace_dir, mode="serial")
    parallel = api.analyze(
        trace_dir, mode="parallel", options=api.AnalysisOptions(workers=2)
    )
    streaming = api.analyze(trace_dir, mode="streaming")
    auto = api.analyze(trace_dir)
    gold = blob(serial.races)
    assert blob(parallel.races) == gold
    assert blob(streaming.races) == gold
    assert blob(auto.races) == gold
    assert serial.race_count == 2


def test_analyze_auto_picks_parallel(trace_dir):
    result = api.analyze(trace_dir, options=api.AnalysisOptions(workers=2))
    assert result.race_count == 2


def test_analyze_accepts_str_pathlike_and_tracedir(trace_dir):
    gold = blob(api.analyze(TraceDir(trace_dir)).races)
    assert blob(api.analyze(str(trace_dir)).races) == gold
    assert blob(api.analyze(Path(trace_dir)).races) == gold


def test_analyze_rejects_unknown_mode(trace_dir):
    with pytest.raises(ValueError, match="unknown analysis mode"):
        api.analyze(trace_dir, mode="psychic")


# -- watch ---------------------------------------------------------------------


def test_watch_live_feed():
    live = []
    result = api.watch(WORKLOAD, nthreads=NTHREADS, on_race=live.append)
    assert result.race_count == 2
    assert len(live) == 2
    assert result.time_to_first_race is not None


# -- Session -------------------------------------------------------------------


def test_session_replay(trace_dir):
    with api.Session(trace_dir) as session:
        result = session.analyze()
        assert result.race_count == 2
        assert session.pairs_analyzed > 0
        assert len(session.races) == 2


def test_session_live(tmp_path):
    trace = tmp_path / "live"
    workload = REGISTRY.get(WORKLOAD)
    live = []
    with api.Session(trace, on_race=live.append) as session:
        tool = SwordTool(SwordConfig(log_dir=str(trace)))
        session.attach(tool)
        rt = OpenMPRuntime(
            RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=0)),
            tool=tool,
        )
        rt.run(lambda m: workload.run_program(m))
        result = session.result()
    assert result.race_count == 2
    assert len(live) == 2


def test_session_matches_offline(trace_dir):
    gold = blob(api.analyze(trace_dir, mode="serial").races)
    with api.Session(trace_dir) as session:
        assert blob(session.analyze().races) == gold


# -- path-type fix -------------------------------------------------------------


def test_analyze_trace_accepts_str_and_pathlike(trace_dir):
    gold = blob(analyze_trace(TraceDir(trace_dir)).races)
    assert blob(analyze_trace(str(trace_dir)).races) == gold
    assert blob(analyze_trace(Path(trace_dir)).races) == gold


def test_tracedir_reader_accepts_pathlike(trace_dir):
    trace = TraceDir(Path(trace_dir))
    gid = trace.thread_gids[0]
    with trace.reader(gid) as reader:
        assert reader.uncompressed_bytes >= 0


# -- deprecation shims ---------------------------------------------------------


def test_offline_analyzer_deprecated(trace_dir):
    deprecation.reset()
    with pytest.warns(DeprecationWarning, match="OfflineAnalyzer is deprecated"):
        analyzer = OfflineAnalyzer(TraceDir(trace_dir))
    assert analyzer.analyze().race_count == 2


def test_parallel_analyzer_deprecated(trace_dir):
    deprecation.reset()
    with pytest.warns(
        DeprecationWarning, match="ParallelOfflineAnalyzer is deprecated"
    ):
        analyzer = ParallelOfflineAnalyzer(TraceDir(trace_dir))
    assert analyzer.analyze().race_count == 2


def test_streaming_analyzer_deprecated(trace_dir):
    deprecation.reset()
    with pytest.warns(
        DeprecationWarning, match="StreamingAnalyzer is deprecated"
    ):
        StreamingAnalyzer(trace_dir)


def test_deprecation_warns_once_per_class(trace_dir, recwarn):
    deprecation.reset()
    with pytest.warns(DeprecationWarning, match="OfflineAnalyzer is deprecated"):
        OfflineAnalyzer(TraceDir(trace_dir))
    recwarn.clear()
    # Second (and every later) instantiation is silent: old harnesses
    # construct these in per-workload loops.
    OfflineAnalyzer(TraceDir(trace_dir))
    OfflineAnalyzer(TraceDir(trace_dir))
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
    # Other shims still get their own first warning.
    with pytest.warns(
        DeprecationWarning, match="StreamingAnalyzer is deprecated"
    ):
        StreamingAnalyzer(trace_dir)


def test_new_names_do_not_warn(trace_dir, recwarn):
    from repro.offline import DistributedOfflineAnalyzer, SerialOfflineAnalyzer
    from repro.stream import StreamAnalyzer

    SerialOfflineAnalyzer(TraceDir(trace_dir))
    DistributedOfflineAnalyzer(TraceDir(trace_dir))
    StreamAnalyzer(trace_dir)
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
