"""FaultPlan: determinism, serialisation, and in-place application."""

import json

from repro.faults import FaultAction, FaultPlan


def test_same_seed_same_plan(collected_trace):
    trace = collected_trace(seed=3)
    a = FaultPlan.random(trace, seed=42, actions=5)
    b = FaultPlan.random(trace, seed=42, actions=5)
    assert a.actions == b.actions
    assert a.actions  # a real trace yields applicable actions


def test_different_seeds_differ(collected_trace):
    trace = collected_trace(seed=3)
    plans = {
        tuple(FaultPlan.random(trace, seed=s, actions=5).actions)
        for s in range(8)
    }
    assert len(plans) > 1


def test_json_round_trip(collected_trace):
    trace = collected_trace()
    plan = FaultPlan.random(trace, seed=1, actions=4)
    plan.apply(trace)
    clone = FaultPlan.from_json(json.loads(json.dumps(plan.to_json())))
    assert clone.seed == plan.seed
    assert clone.actions == plan.actions
    assert clone.applied == plan.applied


def test_truncate_action_shortens_file(collected_trace):
    trace = collected_trace()
    log = sorted(trace.glob("thread_*.log"))[0]
    before = log.stat().st_size
    assert FaultAction(kind="truncate", target=log.name, offset=10).apply(trace)
    assert log.stat().st_size == 10 < before


def test_flip_action_changes_bytes(collected_trace):
    trace = collected_trace()
    log = sorted(trace.glob("thread_*.log"))[0]
    before = log.read_bytes()
    assert FaultAction(
        kind="flip", target=log.name, offset=5, length=3
    ).apply(trace)
    after = log.read_bytes()
    assert len(after) == len(before)
    assert after[5:8] != before[5:8]
    assert after[:5] == before[:5] and after[8:] == before[8:]


def test_line_actions(collected_trace):
    trace = collected_trace()
    meta = sorted(trace.glob("thread_*.meta"))[0]
    lines = meta.read_text().splitlines()
    assert FaultAction(
        kind="duplicate_line", target=meta.name, index=0
    ).apply(trace)
    assert len(meta.read_text().splitlines()) == len(lines) + 1
    assert FaultAction(
        kind="delete_line", target=meta.name, index=0
    ).apply(trace)
    assert len(meta.read_text().splitlines()) == len(lines)


def test_action_on_missing_target_is_noop(collected_trace):
    trace = collected_trace()
    assert not FaultAction(
        kind="truncate", target="no_such_file.log", offset=1
    ).apply(trace)
