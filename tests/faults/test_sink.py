"""Online fault injection: the logger's retry/backoff/degradation policy."""

import pytest

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.common.errors import FlushError
from repro.faults import FaultySinkFactory, SinkFaultSpec
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool, TraceDir

from repro import api


def _run(tool, *, nthreads=2, seed=0):
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
        tool=tool,
    )

    def program(m):
        a = m.alloc_array("a", 256)

        def body(ctx):
            for i in ctx.for_range(256):
                ctx.write(a, i, float(i))

        m.parallel(body)

    rt.run(program)
    return tool


def _tool(trace_dir, factory, **knobs):
    config = SwordConfig(
        log_dir=str(trace_dir),
        buffer_events=32,
        flush_backoff_seconds=0.0,
        **knobs,
    )
    return SwordTool(config, sink_factory=factory)


def test_sink_fault_spec_schedule():
    spec = SinkFaultSpec(fail_at=3, fail_count=2)
    assert [spec.should_fail(n) for n in range(1, 7)] == [
        False, False, True, True, False, False,
    ]
    permanent = SinkFaultSpec(fail_at=2, permanent=True)
    assert [permanent.should_fail(n) for n in range(1, 5)] == [
        False, True, True, True,
    ]


def test_transient_fault_recovered_by_retry(trace_dir):
    factory = FaultySinkFactory(SinkFaultSpec(fail_at=2, fail_count=1))
    tool = _run(_tool(trace_dir, factory, flush_retries=3))
    assert factory.failures == 1
    assert tool.stats["flush_retries"] >= 1
    assert tool.stats["chunks_dropped"] == 0
    # The trace is fully intact: strict analysis works.
    result = api.analyze(TraceDir(trace_dir))
    assert result.integrity is None


def test_retry_uses_exponential_backoff(trace_dir):
    factory = FaultySinkFactory(SinkFaultSpec(fail_at=1, fail_count=3))
    tool = _tool(trace_dir, factory, flush_retries=3)
    tool.config.flush_backoff_seconds = 0.01
    sleeps = []
    tool._sleep = sleeps.append
    _run(tool)
    assert sleeps[:3] == [0.01, 0.02, 0.04]


def test_permanent_fault_raises_flush_error(trace_dir):
    factory = FaultySinkFactory(SinkFaultSpec(fail_at=1, permanent=True))
    tool = _tool(trace_dir, factory, flush_retries=2)
    with pytest.raises(FlushError) as info:
        _run(tool)
    assert info.value.attempts == 3  # initial try + 2 retries
    assert "flush failed" in str(info.value)


def test_drop_oldest_keeps_run_alive(trace_dir):
    factory = FaultySinkFactory(SinkFaultSpec(fail_at=2, fail_count=50))
    tool = _tool(
        trace_dir, factory, flush_retries=1, flush_degraded="drop-oldest"
    )
    _run(tool)  # must not raise
    assert tool.stats["chunks_dropped"] >= 1
    assert tool.stats["events_dropped"] > 0
    assert tool.dropped_chunks  # exactly what was lost, recorded
    for entry in tool.dropped_chunks:
        assert set(entry) == {"gid", "data_begin", "size", "events"}


def test_dropped_chunks_recorded_in_manifest_and_salvageable(trace_dir):
    factory = FaultySinkFactory(SinkFaultSpec(fail_at=2, fail_count=2))
    tool = _tool(
        trace_dir, factory, flush_retries=0, flush_degraded="drop-oldest"
    )
    _run(tool)
    assert tool.stats["chunks_dropped"] >= 1
    import json
    from pathlib import Path

    manifest = json.loads((Path(trace_dir) / "manifest.json").read_text())
    assert manifest["dropped_chunks"] == tool.dropped_chunks
    # The surviving trace still analyses cleanly: rows overlapping the
    # holes were suppressed at emission, so strict mode has a consistent
    # (if incomplete) view.
    result = api.analyze(TraceDir(trace_dir))
    assert result.races is not None


def test_rollback_leaves_no_torn_frame(trace_dir):
    """A failed write mid-frame must not corrupt the file for the retry."""

    class PartialThenFailSink:
        """Writes half the frame, then raises (torn write)."""

        def __init__(self, file, schedule):
            self._file = file
            self._schedule = schedule

        def write(self, data):
            self._schedule["n"] += 1
            if self._schedule["n"] == self._schedule["fail_at"]:
                self._file.write(data[: len(data) // 2])
                raise OSError("torn write")
            return self._file.write(data)

        def __getattr__(self, name):
            return getattr(self._file, name)

    schedule = {"n": 0, "fail_at": 2}
    factory = lambda path: PartialThenFailSink(  # noqa: E731
        open(path, "wb"), schedule
    )
    tool = _run(_tool(trace_dir, factory, flush_retries=2))
    assert tool.stats["flush_retries"] >= 1
    # Strict verification: every frame parses, no torn bytes mid-file.
    trace = TraceDir(trace_dir)
    for gid in trace.thread_gids:
        trace.reader(gid).close()
