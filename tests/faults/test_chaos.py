"""Service-tier chaos: the resume sweep and poison degradation."""

from repro.faults import poison_degradation, resume_sweep


def test_resume_sweep_small_fixed_seed():
    # A handful of evenly-sampled restart points keeps this in test
    # budget; CI's chaos-smoke job runs the wider sweep.
    result = resume_sweep(
        "plusplus-orig-yes",
        jobs=2,
        nthreads=2,
        seed=0,
        shard_pairs=8,
        max_points=4,
    )
    assert result.ok, [p.to_json() for p in result.failures]
    assert result.wal_records > 0
    assert result.clean_races > 0
    # The sweep actually exercised resume, not just empty restarts.
    assert any(p.jobs_resumed > 0 for p in result.points)


def test_poison_degradation_fixed_seed():
    result = poison_degradation(
        "plusplus-orig-yes",
        nthreads=2,
        seed=0,
        shard_pairs=4,
        poison=(1,),
    )
    assert result.ok, result.to_json()
    assert result.state == "degraded"
    assert result.report["pair_coverage"] < 1.0
    assert result.report["shards_quarantined"] == [1]


def test_stalled_shard_times_out_and_quarantines():
    # A shard sleeping past the liveness timeout on every attempt burns
    # its crash budget and lands in quarantine like any other poison.
    result = poison_degradation(
        "plusplus-orig-yes",
        nthreads=2,
        seed=0,
        shard_pairs=4,
        poison=(),
        stall=(1,),
        shard_timeout_s=0.2,
    )
    assert result.ok, result.to_json()
    assert result.stalled_shards == [1]
    causes = result.report["quarantined"][0]["causes"]
    assert any("ShardTimeoutError" in c for c in causes), causes
