"""Kill-anywhere property over delta-filtered traces.

The filter changes what the codec sees, not the framing: payload CRCs
cover the compressed bytes and each block decodes independently, so a
kill at any byte of a filtered log must salvage exactly like an
unfiltered one.
"""

from repro.faults.harness import frame_kill_points, kill_sweep
from repro.sword.reader import ThreadTraceReader


def test_filtered_trace_enumerates_kill_points(collected_trace):
    trace = collected_trace("figure5-truedep", delta_filter=True)
    points = frame_kill_points(trace)
    kinds = {p.kind for p in points}
    assert {"boundary", "mid-header", "mid-payload", "pre-commit"} <= kinds


def test_filtered_blocks_marked_in_index(collected_trace):
    trace = collected_trace("figure5-truedep", delta_filter=True)
    with ThreadTraceReader(trace, 0) as reader:
        assert reader._blocks, "trace has no flushed blocks"
        assert all(ref.filter_id == 1 for ref in reader._blocks)


def test_kill_sweep_over_filtered_frames():
    result = kill_sweep(
        "figure5-truedep",
        nthreads=2,
        seed=0,
        buffer_events=64,
        max_points=12,
        delta_filter=True,
    )
    assert result.points, "sweep enumerated no kill points"
    assert result.clean_races >= 1
    assert result.ok, result.summary() if hasattr(result, "summary") else result


def test_filtered_and_unfiltered_sweeps_agree():
    plain = kill_sweep(
        "antidep1-orig-yes", nthreads=2, seed=1, buffer_events=64, max_points=6
    )
    filtered = kill_sweep(
        "antidep1-orig-yes",
        nthreads=2,
        seed=1,
        buffer_events=64,
        max_points=6,
        delta_filter=True,
    )
    assert plain.ok and filtered.ok
    assert plain.clean_races == filtered.clean_races
