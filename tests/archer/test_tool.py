"""ARCHER behaviour: detection, HB edges, masking, eviction misses, OOM."""

import numpy as np
import pytest

from repro.archer import ArcherTool
from repro.common.config import ArcherConfig, RunConfig, SchedulerConfig
from repro.common.errors import SimulatedOOMError
from repro.common.sourceloc import pc_of
from repro.memory.accounting import NodeMemory
from repro.omp import OpenMPRuntime


def run_archer(program, *, nthreads=4, seed=0, config=None, limit=None):
    accountant = NodeMemory(limit) if limit else None
    tool = ArcherTool(config or ArcherConfig(), accountant)
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
        tool=tool,
        accountant=accountant,
    )
    rt.run(program)
    return tool


def test_plain_conflict_detected():
    def program(m):
        x = m.alloc_scalar("x")

        def body(ctx):
            ctx.write(x, 0, float(ctx.tid), pc=pc_of("a.c", 1))
        m.parallel(body, nthreads=2)

    tool = run_archer(program, nthreads=2)
    assert tool.race_count == 1


def test_barrier_creates_hb_edge():
    def program(m):
        x = m.alloc_scalar("x")

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(x, 0, 1.0)
            ctx.barrier()
            if ctx.tid == 1:
                ctx.read(x, 0)
        m.parallel(body, nthreads=2)

    assert run_archer(program, nthreads=2).race_count == 0


def test_fork_join_edges():
    def program(m):
        x = m.alloc_scalar("x")

        def first(ctx):
            if ctx.tid == 0:
                ctx.write(x, 0, 1.0)

        def second(ctx):
            ctx.read(x, 0)

        m.parallel(first, nthreads=2)
        m.parallel(second, nthreads=2)

    assert run_archer(program).race_count == 0


def test_lock_edges_in_observed_order_mask():
    """The Figure-1 mechanism: detection depends on lock acquisition order.

    The master runs first, so its critical section precedes the worker's and
    the release->acquire edge orders the unlocked write: masked.
    """

    def program(m):
        a = m.alloc_scalar("a")
        lock = m.new_lock("L")

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(a, 0, 1.0, pc=pc_of("m.c", 5))
                with ctx.locked(lock):
                    ctx.write(a, 0, 2.0, pc=pc_of("m.c", 7))
            else:
                with ctx.locked(lock):
                    ctx.read(a, 0, pc=pc_of("m.c", 10))
        m.parallel(body, nthreads=2)

    assert run_archer(program, nthreads=2).race_count == 0


def test_eviction_miss_and_shadow_cells_knob():
    """The §II mechanism, and that more cells would have caught it."""

    def program(m):
        a = m.alloc_array("a", 8)

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(a, 0, 1.0, pc=pc_of("ev.c", 1))
                for _ in range(6):
                    ctx.read(a, 0, pc=pc_of("ev.c", 2))
            else:
                ctx.read(a, 0, pc=pc_of("ev.c", 3))
        m.parallel(body, nthreads=2)

    missed = run_archer(program, nthreads=2)
    assert missed.race_count == 0
    assert missed.evictions > 0
    # With enough cells the write record survives and the race is caught.
    caught = run_archer(program, nthreads=2,
                        config=ArcherConfig(shadow_cells=16))
    assert caught.race_count == 1


def test_atomics_do_not_race_each_other():
    def program(m):
        c = m.alloc_scalar("c", np.int64)

        def body(ctx):
            ctx.atomic_add(c, 0, 1)
        m.parallel(body)

    assert run_archer(program).race_count == 0


def test_memory_overhead_is_proportional():
    accountant_holder = {}

    def program(m):
        big = m.alloc_array("big", 100_000, np.float64)  # 800 KB

        def body(ctx):
            lo, hi = ctx.static_chunk(100_000)
            ctx.write_slice(big, lo, hi, np.zeros(hi - lo))
        m.parallel(body)

    accountant = NodeMemory(10**12)
    tool = ArcherTool(ArcherConfig(), accountant)
    rt = OpenMPRuntime(RunConfig(nthreads=4), tool=tool, accountant=accountant)
    rt.run(program)
    app = accountant.peak("app")
    shadow = accountant.peak("shadow")
    assert shadow == 4 * app  # the 4-cells-per-word proportionality


def test_oom_on_limited_node():
    def program(m):
        big = m.alloc_array("big", 1000, np.float64, sim_scale=1000)  # 8 MB sim

        def body(ctx):
            ctx.write(big, 0, 1.0)
        m.parallel(body, nthreads=2)

    with pytest.raises(SimulatedOOMError):
        run_archer(program, nthreads=2, limit=24 * 2**20)  # 24 MiB node


def test_flush_shadow_reduces_peak_for_multi_region():
    def program(m):
        arrays = [m.alloc_array(f"a{i}", 20_000, np.float64) for i in range(4)]

        def use(ctx, arr):
            lo, hi = ctx.static_chunk(20_000)
            ctx.write_slice(arr, lo, hi, np.zeros(hi - lo))

        for arr in arrays:
            m.parallel(use, arr, nthreads=2)

    acc_default = NodeMemory(10**12)
    tool = ArcherTool(ArcherConfig(flush_shadow=False), acc_default)
    OpenMPRuntime(RunConfig(nthreads=2), tool=tool,
                  accountant=acc_default).run(program)

    acc_low = NodeMemory(10**12)
    tool_low = ArcherTool(ArcherConfig(flush_shadow=True), acc_low)
    OpenMPRuntime(RunConfig(nthreads=2), tool=tool_low,
                  accountant=acc_low).run(program)

    assert acc_low.peak("shadow") < acc_default.peak("shadow")
    assert tool_low.shadow.flushes == 4
