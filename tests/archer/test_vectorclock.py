"""Vector clock laws."""

from hypothesis import given
from hypothesis import strategies as st

from repro.archer.vectorclock import VectorClock


def vc_from(d):
    vc = VectorClock()
    for tid, clk in d.items():
        for _ in range(clk):
            vc.tick(tid)
    return vc


def test_tick_and_get():
    vc = VectorClock()
    assert vc.get(3) == 0
    assert vc.tick(3) == 1
    assert vc.tick(3) == 2
    assert vc.get(3) == 2
    assert vc.get(1000) == 0  # beyond capacity reads as zero


def test_join_is_pointwise_max():
    a = vc_from({0: 3, 1: 1})
    b = vc_from({1: 5, 2: 2})
    a.join(b)
    assert a.get(0) == 3 and a.get(1) == 5 and a.get(2) == 2


def test_join_grows_capacity():
    a = VectorClock(size=1)
    b = vc_from({40: 2})
    a.join(b)
    assert a.get(40) == 2


def test_copy_is_independent():
    a = vc_from({0: 1})
    b = a.copy()
    b.tick(0)
    assert a.get(0) == 1
    assert b.get(0) == 2


def test_happens_before():
    a = vc_from({0: 1, 1: 2})
    b = vc_from({0: 2, 1: 2})
    assert a.happens_before(b)
    assert not b.happens_before(a)
    assert a.happens_before(a)
    c = vc_from({5: 1})
    assert not c.happens_before(b)  # component beyond b's knowledge


def test_epoch_visible():
    vc = vc_from({2: 4})
    assert vc.epoch_visible(2, 4)
    assert vc.epoch_visible(2, 3)
    assert not vc.epoch_visible(2, 5)
    assert vc.epoch_visible(9, 0)


def test_as_array_padded():
    vc = vc_from({1: 3})
    arr = vc.as_array(5)
    assert list(arr) == [0, 3, 0, 0, 0]


@given(
    st.dictionaries(st.integers(0, 8), st.integers(0, 5), max_size=6),
    st.dictionaries(st.integers(0, 8), st.integers(0, 5), max_size=6),
)
def test_property_join_upper_bound(da, db):
    a, b = vc_from(da), vc_from(db)
    a_before = {i: a.get(i) for i in range(10)}
    a.join(b)
    for i in range(10):
        assert a.get(i) == max(a_before[i], b.get(i))


@given(
    st.dictionaries(st.integers(0, 6), st.integers(0, 4), max_size=5),
    st.dictionaries(st.integers(0, 6), st.integers(0, 4), max_size=5),
)
def test_property_hb_iff_pointwise_leq(da, db):
    a, b = vc_from(da), vc_from(db)
    expected = all(a.get(i) <= b.get(i) for i in range(10))
    assert a.happens_before(b) == expected


def test_mutual_joins_do_not_ratchet_capacity():
    """Regression: clocks of mixed capacities joining each other must not
    grow geometrically (this OOM-killed 20+-thread runs: capacities went
    21 -> 32 -> 42 -> 64 -> 84 -> ... without bound)."""
    clocks = [VectorClock() for _ in range(24)]
    for i, vc in enumerate(clocks):
        vc.tick(i)
    acc = VectorClock()
    for _round in range(200):
        for vc in clocks:
            acc.join(vc)
        for vc in clocks:
            vc.join(acc)
    cap = max(vc._clocks.shape[0] for vc in clocks + [acc])
    assert cap <= 64, f"capacity ratcheted to {cap}"
