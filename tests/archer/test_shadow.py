"""Shadow memory mechanics: cells, masks, eviction, accounting."""

import numpy as np
import pytest

from repro.archer.shadow import AllocationShadow, ShadowMemory
from repro.common.config import ArcherConfig
from repro.memory.accounting import NodeMemory
from repro.memory.address_space import AddressSpace


def make_shadow(nwords=8, cells=4):
    space = AddressSpace()
    arr = space.alloc_array("a", nwords, np.float64)
    return AllocationShadow(arr.allocation, cells=cells, word_bytes=8), arr


def hits_of(shadow, **kw):
    hits = []
    defaults = dict(size=8, count=1, stride=0, is_write=False,
                    is_atomic=False, pc=1, clk=1,
                    vc_array=np.zeros(16, dtype=np.int64))
    defaults.update(kw)
    shadow.check_and_store(on_race=hits.append, **defaults)
    return hits


class TestRaceChecks:
    def test_write_read_conflict_detected(self):
        shadow, arr = make_shadow()
        assert hits_of(shadow, addr=arr.addr(0), tid=0, is_write=True, pc=10) == []
        hits = hits_of(shadow, addr=arr.addr(0), tid=1, pc=20)
        assert len(hits) == 1
        assert hits[0].cell_pc == 10
        assert hits[0].cell_write

    def test_read_read_no_conflict(self):
        shadow, arr = make_shadow()
        hits_of(shadow, addr=arr.addr(0), tid=0)
        assert hits_of(shadow, addr=arr.addr(0), tid=1) == []

    def test_same_thread_no_conflict(self):
        shadow, arr = make_shadow()
        hits_of(shadow, addr=arr.addr(0), tid=0, is_write=True)
        assert hits_of(shadow, addr=arr.addr(0), tid=0, is_write=True) == []

    def test_hb_ordered_epoch_no_conflict(self):
        shadow, arr = make_shadow()
        hits_of(shadow, addr=arr.addr(0), tid=0, is_write=True, clk=3)
        vc = np.zeros(16, dtype=np.int64)
        vc[0] = 3  # the reader's clock covers the writer's epoch
        assert hits_of(shadow, addr=arr.addr(0), tid=1, vc_array=vc) == []
        vc[0] = 2  # stale knowledge: the epoch is not covered
        assert len(hits_of(shadow, addr=arr.addr(0), tid=2, vc_array=vc)) == 1

    def test_both_atomic_no_conflict(self):
        shadow, arr = make_shadow()
        hits_of(shadow, addr=arr.addr(0), tid=0, is_write=True, is_atomic=True)
        assert hits_of(shadow, addr=arr.addr(0), tid=1, is_write=True,
                       is_atomic=True) == []
        # Mixed atomic/plain still conflicts.
        assert len(hits_of(shadow, addr=arr.addr(0), tid=2, is_write=True)) >= 1

    def test_byte_mask_disjoint_halves_no_conflict(self):
        shadow, arr = make_shadow()
        base = arr.addr(0)
        hits_of(shadow, addr=base, size=4, tid=0, is_write=True)
        assert hits_of(shadow, addr=base + 4, size=4, tid=1, is_write=True) == []
        assert len(hits_of(shadow, addr=base + 2, size=4, tid=2,
                           is_write=True)) == 1

    def test_bulk_range_checked_vectorised(self):
        shadow, arr = make_shadow(nwords=64)
        hits_of(shadow, addr=arr.addr(0), count=64, stride=8, tid=0,
                is_write=True, pc=7)
        hits = hits_of(shadow, addr=arr.addr(32), count=16, stride=8, tid=1)
        assert len(hits) == 1  # dedup by cell pc within one call
        assert hits[0].cell_pc == 7


class TestEviction:
    def test_fifth_access_evicts(self):
        shadow, arr = make_shadow(cells=4)
        addr = arr.addr(0)
        hits_of(shadow, addr=addr, tid=0, is_write=True, pc=100)  # the write
        for i in range(4):
            hits_of(shadow, addr=addr, tid=0, pc=200 + i)  # own reads
        assert shadow.evictions == 1
        # The write record is gone: a foreign read sees only reads.
        assert hits_of(shadow, addr=addr, tid=1) == []

    def test_round_robin_cycles_slots(self):
        shadow, arr = make_shadow(cells=2)
        addr = arr.addr(0)
        for i in range(6):
            hits_of(shadow, addr=addr, tid=0, pc=i)
        assert shadow.evictions == 4
        live_pcs = set(shadow.pc[0].tolist())
        assert live_pcs == {4, 5}

    def test_no_eviction_below_capacity(self):
        shadow, arr = make_shadow(cells=4)
        for i in range(4):
            hits_of(shadow, addr=arr.addr(0), tid=0, pc=i)
        assert shadow.evictions == 0


class TestShadowMemory:
    def test_lazy_tables_and_accounting(self):
        accountant = NodeMemory(limit=10**9)
        space = AddressSpace(accountant)
        arr = space.alloc_array("a", 1000, np.float64)  # 8000 B
        shadow = ShadowMemory(ArcherConfig(), accountant)
        assert shadow.tables == 0
        table = shadow.table_for(arr.allocation)
        assert shadow.tables == 1
        # 4 cells x 8 B per 8-byte word = 4x the application bytes...
        assert accountant.current("shadow") == 4 * 8000
        # ...plus the misc proportional overhead.
        assert accountant.current("tool") == 8000
        assert shadow.table_for(arr.allocation) is table

    def test_sim_scaled_allocation_charges_scaled_shadow(self):
        accountant = NodeMemory(limit=10**12)
        space = AddressSpace(accountant)
        arr = space.alloc_array("big", 1000, np.float64, sim_scale=100)
        shadow = ShadowMemory(ArcherConfig(), accountant)
        shadow.table_for(arr.allocation)
        assert accountant.current("shadow") == 4 * 800_000

    def test_flush_releases_shadow_keeps_misc(self):
        accountant = NodeMemory(limit=10**9)
        space = AddressSpace(accountant)
        arr = space.alloc_array("a", 100, np.float64)
        shadow = ShadowMemory(ArcherConfig(), accountant)
        shadow.table_for(arr.allocation)
        assert accountant.current("shadow") > 0
        shadow.flush()
        assert accountant.current("shadow") == 0
        assert accountant.current("tool") > 0  # misc overhead stays
        assert shadow.tables == 0
        assert shadow.flushes == 1
