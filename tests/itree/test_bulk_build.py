"""O(n) bulk construction: invariants and query parity vs incremental."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itree.interval import StridedInterval
from repro.itree.tree import BLACK, IntervalTree


def si(low, high, **kw):
    length = high - low + 1
    defaults = dict(is_write=False, is_atomic=False, pc=0, msid=0)
    defaults.update(kw)
    return StridedInterval(low=low, stride=1, size=1, count=length, **defaults)


def _sorted_intervals(spans):
    ivs = [si(lo, lo + length) for lo, length in spans]
    ivs.sort(key=lambda iv: iv.low)  # stable: ties keep build order
    return ivs


def _incremental(ivs):
    tree = IntervalTree()
    for iv in ivs:
        tree.insert(iv)
    return tree


class TestBulkBuild:
    def test_empty(self):
        tree = IntervalTree.build_from_sorted([])
        assert len(tree) == 0
        tree.validate()

    def test_single(self):
        tree = IntervalTree.build_from_sorted([si(3, 9)])
        assert len(tree) == 1
        assert tree.root.color == BLACK
        tree.validate()

    def test_inorder_preserved(self):
        ivs = _sorted_intervals([(i * 2, 3) for i in range(100)])
        tree = IntervalTree.build_from_sorted(ivs)
        assert [n.interval.low for n in tree] == [iv.low for iv in ivs]
        tree.validate()

    def test_duplicates_kept_in_order(self):
        ivs = [si(5, 9, pc=i) for i in range(6)]
        tree = IntervalTree.build_from_sorted(ivs)
        assert [n.interval.pc for n in tree] == list(range(6))
        tree.validate()

    def test_height_is_optimal(self):
        n = 1 << 12
        tree = IntervalTree.build_from_sorted(
            _sorted_intervals([(i, 0) for i in range(n)])
        )
        # Median split: all leaves on the last two levels.
        assert tree.height() <= n.bit_length()
        tree.validate()

    def test_tree_still_mutable_after_bulk_build(self):
        ivs = _sorted_intervals([(i * 3, 1) for i in range(50)])
        tree = IntervalTree.build_from_sorted(ivs)
        node = tree.insert(si(1000, 1001))
        tree.validate()
        tree.delete(node)
        tree.validate()
        assert len(tree) == 50


@settings(max_examples=60, deadline=None)
@given(
    spans=st.lists(
        st.tuples(st.integers(0, 400), st.integers(0, 50)),
        min_size=0,
        max_size=150,
    ),
    queries=st.lists(
        st.tuples(st.integers(0, 460), st.integers(0, 50)),
        min_size=1,
        max_size=8,
    ),
)
def test_property_bulk_build_query_parity(spans, queries):
    """Bulk and incremental trees answer every overlap query identically."""
    ivs = _sorted_intervals(spans)
    bulk = IntervalTree.build_from_sorted(ivs)
    incr = _incremental(ivs)
    bulk.validate()
    assert len(bulk) == len(incr)
    assert [n.interval for n in bulk] == [n.interval for n in incr]
    for qlo, qlen in queries:
        qhi = qlo + qlen
        got = sorted(
            (n.interval.low, n.interval.high) for n in bulk.iter_overlaps(qlo, qhi)
        )
        want = sorted(
            (n.interval.low, n.interval.high) for n in incr.iter_overlaps(qlo, qhi)
        )
        assert got == want
        assert (bulk.search_overlap(qlo, qhi) is None) == (
            incr.search_overlap(qlo, qhi) is None
        )


def test_large_randomized_parity():
    rng = random.Random(11)
    spans = [(rng.randrange(1_000_000), rng.randrange(200)) for _ in range(5000)]
    ivs = _sorted_intervals(spans)
    bulk = IntervalTree.build_from_sorted(ivs)
    bulk.validate()
    incr = _incremental(ivs)
    for _ in range(200):
        qlo = rng.randrange(1_000_200)
        qhi = qlo + rng.randrange(500)
        got = {id(n.interval) for n in bulk.iter_overlaps(qlo, qhi)}
        want = {id(n.interval) for n in incr.iter_overlaps(qlo, qhi)}
        assert got == want
