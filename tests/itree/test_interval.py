"""Strided-interval payloads: geometry, coalescing, normalisation."""

import pytest

from repro.common.events import Access
from repro.itree.interval import StridedInterval, interval_from_access


def make(low=0, stride=8, size=4, count=3, **kw):
    defaults = dict(is_write=False, is_atomic=False, pc=1, msid=0)
    defaults.update(kw)
    return StridedInterval(low=low, stride=stride, size=size, count=count, **defaults)


class TestGeometry:
    def test_figure4_style_interval(self):
        # T0 of Fig. 4: base 10, stride 8, size 4, five elements.
        iv = make(low=10, stride=8, size=4, count=5)
        assert iv.last_start == 42
        assert iv.high == 45
        assert iv.next_start == 50
        assert not iv.dense
        addrs = set(iv.addresses())
        assert 10 in addrs and 13 in addrs and 14 not in addrs

    def test_singleton_uses_size_as_stride(self):
        iv = make(count=1, stride=999, size=8)
        assert iv.stride == 8
        assert iv.high == iv.low + 7
        assert iv.dense

    def test_dense_when_stride_le_size(self):
        assert make(stride=4, size=4).dense
        assert make(stride=2, size=4).dense
        assert not make(stride=8, size=4).dense

    def test_extent_overlap(self):
        a = make(low=0, stride=8, size=4, count=2)   # covers [0, 11]
        b = make(low=11, stride=8, size=4, count=1)  # covers [11, 14]
        c = make(low=12, stride=8, size=4, count=1)
        assert a.extent_overlaps(b)
        assert not a.extent_overlaps(c)

    def test_validation(self):
        with pytest.raises(ValueError):
            make(count=0)
        with pytest.raises(ValueError):
            make(size=0)
        with pytest.raises(ValueError):
            StridedInterval(low=0, stride=0, size=4, count=2,
                            is_write=False, is_atomic=False, pc=0, msid=0)


class TestCoalescing:
    def test_singleton_duplicate(self):
        iv = make(count=1, size=8, low=100)
        assert iv.try_extend(100)
        assert iv.count == 1

    def test_singleton_grows_with_any_gap(self):
        iv = make(count=1, size=8, low=100)
        assert iv.try_extend(116)
        assert iv.count == 2
        assert iv.stride == 16
        assert iv.try_extend(132)
        assert iv.count == 3

    def test_progression_rejects_wrong_stride(self):
        iv = make(count=2, stride=8, size=4, low=0)
        assert not iv.try_extend(12)   # expected next start is 16
        assert iv.try_extend(16)
        assert iv.count == 3

    def test_trailing_duplicate_absorbed(self):
        iv = make(count=3, stride=8, size=4, low=0)
        assert iv.try_extend(16)  # == last_start
        assert iv.count == 3

    def test_backward_not_absorbed(self):
        iv = make(count=1, size=8, low=100)
        assert not iv.try_extend(92)

    def test_bulk_append(self):
        iv = make(count=2, stride=8, size=4, low=0)
        assert iv.try_append_bulk(16, count=3, stride=8)
        assert iv.count == 5
        assert not iv.try_append_bulk(100, count=2, stride=4)

    def test_bulk_onto_singleton(self):
        iv = make(count=1, size=4, low=0)
        assert iv.try_append_bulk(8, count=2, stride=8)
        assert iv.count == 3
        assert iv.stride == 8

    def test_same_site(self):
        a = make()
        assert a.same_site(make())
        assert not a.same_site(make(pc=2))
        assert not a.same_site(make(is_write=True))
        assert not a.same_site(make(msid=5))
        assert not a.same_site(make(size=8))


class TestFromAccess:
    def test_scalar_access(self):
        iv = interval_from_access(
            Access(addr=40, size=8, count=1, stride=0, is_write=True,
                   is_atomic=False, pc=9, msid=2)
        )
        assert iv.low == 40
        assert iv.count == 1
        assert iv.is_write and iv.pc == 9 and iv.msid == 2

    def test_negative_stride_normalised(self):
        iv = interval_from_access(
            Access(addr=100, size=4, count=4, stride=-8, is_write=False,
                   is_atomic=False, pc=1)
        )
        assert iv.low == 76
        assert iv.stride == 8
        assert iv.count == 4
