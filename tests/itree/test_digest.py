"""Access digests: the pair-level prune must never drop a real race."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import intervals_share_address
from repro.itree import (
    IntervalTree,
    StridedInterval,
    TreeDigest,
    digests_may_race,
    tree_from_rows,
    tree_to_rows,
)


def interval(low, stride=1, size=1, count=1, write=True, atomic=False, pc=0):
    return StridedInterval(
        low=low, stride=stride, size=size, count=count,
        is_write=write, is_atomic=atomic, pc=pc, msid=0,
    )


def make_tree(intervals):
    tree = IntervalTree()
    for si in intervals:
        tree.insert(si)
    return tree


def pair_races(a: StridedInterval, b: StridedInterval) -> bool:
    """The node-level race condition the digest filter approximates."""
    if not (a.is_write or b.is_write):
        return False
    if a.is_atomic and b.is_atomic:
        return False
    return intervals_share_address(a, b) is not None


intervals_st = st.builds(
    interval,
    low=st.integers(min_value=0, max_value=200),
    stride=st.integers(min_value=1, max_value=12),
    size=st.integers(min_value=1, max_value=8),
    count=st.integers(min_value=1, max_value=6),
    write=st.booleans(),
    atomic=st.booleans(),
)
tree_st = st.lists(intervals_st, min_size=0, max_size=5)


@settings(max_examples=300, deadline=None)
@given(tree_st, tree_st)
def test_prune_is_sound(ia, ib):
    """digests_may_race == False implies no node pair races."""
    da = TreeDigest.of_tree(make_tree(ia))
    db = TreeDigest.of_tree(make_tree(ib))
    if not digests_may_race(da, db):
        for a in ia:
            for b in ib:
                assert not pair_races(a, b)


def test_digest_of_empty_tree():
    d = TreeDigest.of_tree(make_tree([]))
    assert d.nodes == 0
    assert not digests_may_race(d, d)


def test_disjoint_boxes_pruned():
    da = TreeDigest.of_tree(make_tree([interval(0, size=8)]))
    db = TreeDigest.of_tree(make_tree([interval(100, size=8)]))
    assert not digests_may_race(da, db)


def test_read_read_pruned():
    da = TreeDigest.of_tree(make_tree([interval(0, write=False)]))
    db = TreeDigest.of_tree(make_tree([interval(0, write=False)]))
    assert not digests_may_race(da, db)


def test_atomic_atomic_pruned():
    da = TreeDigest.of_tree(make_tree([interval(0, atomic=True)]))
    db = TreeDigest.of_tree(make_tree([interval(0, atomic=True)]))
    assert not digests_may_race(da, db)


def test_disjoint_residue_classes_pruned():
    """Two interleaved strided sweeps that never touch the same byte."""
    # Thread A sweeps bytes {0, 8, 16, ...}; thread B sweeps {4, 12, 20, ...}.
    da = TreeDigest.of_tree(make_tree([interval(0, stride=8, size=4, count=50)]))
    db = TreeDigest.of_tree(make_tree([interval(4, stride=8, size=4, count=50)]))
    assert da.gcd == 8 and db.gcd == 8
    assert not digests_may_race(da, db)


def test_shared_residue_class_not_pruned():
    da = TreeDigest.of_tree(make_tree([interval(0, stride=8, size=4, count=50)]))
    db = TreeDigest.of_tree(make_tree([interval(8, stride=8, size=4, count=50)]))
    assert digests_may_race(da, db)


def test_digest_json_roundtrip():
    d = TreeDigest.of_tree(
        make_tree([interval(0, stride=8, size=4, count=5), interval(64)])
    )
    assert TreeDigest.from_json(d.to_json()) == d


@settings(max_examples=100, deadline=None)
@given(tree_st)
def test_serialize_roundtrip_exact_shape(intervals):
    """tree_from_rows rebuilds the identical structure — node for node —
    so the shape-dependent iter_overlaps enumeration order is preserved."""
    tree = make_tree(intervals)
    rebuilt = tree_from_rows(tree_to_rows(tree))
    assert len(rebuilt) == len(tree)
    assert tree_to_rows(rebuilt) == tree_to_rows(tree)

    def shape(t, node):
        if node is t.nil:
            return None
        return (
            node.color,
            node.interval.low,
            node.max_high,
            shape(t, node.left),
            shape(t, node.right),
        )

    assert shape(rebuilt, rebuilt.root) == shape(tree, tree.root)


def test_residue_window_math_matches_brute_force():
    """Cross-check the modular window test against explicit address sets."""
    cases = [
        (interval(0, stride=6, size=2, count=10), interval(3, stride=6, size=2, count=10)),
        (interval(0, stride=6, size=2, count=10), interval(2, stride=6, size=2, count=10)),
        (interval(1, stride=9, size=3, count=7), interval(5, stride=9, size=3, count=7)),
    ]
    for a, b in cases:
        da = TreeDigest.of_tree(make_tree([a]))
        db = TreeDigest.of_tree(make_tree([b]))
        shared = bool(set(a.addresses()) & set(b.addresses())) if hasattr(a, "addresses") else (
            intervals_share_address(a, b) is not None
        )
        if not digests_may_race(da, db):
            assert not shared
