"""Summarising tree builder: loop patterns collapse into few nodes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.events import Access, accesses_to_records
from repro.itree.builder import TreeBuilder, build_tree


def acc(addr, *, size=8, count=1, stride=0, write=False, pc=1, msid=0,
        atomic=False):
    return Access(addr=addr, size=size, count=count, stride=stride,
                  is_write=write, is_atomic=atomic, pc=pc, msid=msid)


def test_unit_stride_sweep_collapses_to_one_node():
    """The paper's point: an array sweep becomes one summarised node."""
    tree = build_tree(acc(i * 8, write=True) for i in range(1000))
    assert len(tree) == 1
    node = next(iter(tree)).interval
    assert node.count == 1000
    assert node.low == 0
    assert node.stride == 8


def test_interleaved_sites_keep_separate_progressions():
    """a[i] = a[i-1]: read site and write site alternate but each coalesces."""
    events = []
    for i in range(1, 500):
        events.append(acc((i - 1) * 8, pc=10))          # read a[i-1]
        events.append(acc(i * 8, write=True, pc=11))    # write a[i]
    tree = build_tree(events)
    assert len(tree) == 2
    counts = sorted(n.interval.count for n in tree)
    assert counts == [499, 499]


def test_repeated_single_location_is_one_node():
    tree = build_tree(acc(64) for _ in range(100))
    assert len(tree) == 1
    assert next(iter(tree)).interval.count == 1


def test_different_msid_not_coalesced():
    tree = build_tree([acc(0, msid=0), acc(8, msid=1)])
    assert len(tree) == 2


def test_bulk_events_passthrough_and_extend():
    events = [
        acc(0, count=100, stride=8, write=True),
        acc(800, count=100, stride=8, write=True),  # continues progression
        acc(5000, count=10, stride=16, write=True),
    ]
    tree = build_tree(events)
    assert len(tree) == 2
    counts = sorted(n.interval.count for n in tree)
    assert counts == [10, 200]


def test_non_contiguous_breaks_progression():
    tree = build_tree([acc(0), acc(8), acc(16), acc(1000), acc(1008)])
    assert len(tree) == 2
    counts = sorted(n.interval.count for n in tree)
    assert counts == [2, 3]


def test_add_records_filters_non_access_kinds():
    from repro.common.events import make_event, KIND_BARRIER

    b = TreeBuilder()
    records = accesses_to_records([acc(0), acc(8)])
    b.add_records(records)
    barrier_only = np.array([make_event(KIND_BARRIER)], dtype=records.dtype)
    b.add_records(barrier_only)
    tree = b.finish()
    assert len(tree) == 1
    assert b.events_in == 2


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 40),        # element index
            st.booleans(),             # write?
            st.sampled_from([1, 2]),   # pc choice
        ),
        min_size=1,
        max_size=200,
    )
)
def test_property_summarisation_preserves_address_multiset(ops):
    """Coalescing must never lose or invent addresses per (site, op)."""
    events = [
        acc(idx * 8, write=w, pc=pc) for idx, w, pc in ops
    ]
    tree = build_tree(events)
    # Addresses per (pc, write) in the tree...
    got: dict = {}
    for node in tree:
        iv = node.interval
        key = (iv.pc, iv.is_write)
        got.setdefault(key, set()).update(iv.addresses().tolist())
    # ... must equal the union of raw event addresses (sets: duplicates are
    # summarised by design).
    expected: dict = {}
    for e in events:
        key = (e.pc, e.is_write)
        expected.setdefault(key, set()).update(e.addresses().tolist())
    assert got == expected
