"""Augmented red-black interval tree: invariants and queries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itree.interval import StridedInterval
from repro.itree.tree import BLACK, IntervalTree


def si(low, high, **kw):
    """A dense interval covering [low, high]."""
    length = high - low + 1
    defaults = dict(is_write=False, is_atomic=False, pc=0, msid=0)
    defaults.update(kw)
    return StridedInterval(low=low, stride=1, size=1, count=length, **defaults)


class TestBasics:
    def test_empty(self):
        t = IntervalTree()
        assert len(t) == 0
        assert not t
        assert t.search_overlap(0, 100) is None
        assert list(t.iter_overlaps(0, 100)) == []
        t.validate()

    def test_insert_and_inorder(self):
        t = IntervalTree()
        for lo in (50, 10, 30, 70, 20):
            t.insert(si(lo, lo + 5))
        lows = [n.interval.low for n in t]
        assert lows == sorted(lows)
        assert len(t) == 5
        t.validate()

    def test_duplicates_allowed(self):
        t = IntervalTree()
        for _ in range(4):
            t.insert(si(5, 9))
        assert len(t) == 4
        t.validate()

    def test_root_is_black(self):
        t = IntervalTree()
        t.insert(si(1, 2))
        assert t.root.color == BLACK


class TestOverlapQueries:
    def test_search_overlap_hits(self):
        t = IntervalTree()
        t.insert(si(10, 20))
        t.insert(si(30, 40))
        assert t.search_overlap(15, 16) is not None
        assert t.search_overlap(25, 29) is None
        assert t.search_overlap(20, 30) is not None  # touches both ends

    def test_iter_overlaps_finds_all(self):
        t = IntervalTree()
        intervals = [(0, 5), (3, 8), (10, 12), (11, 30), (40, 41)]
        for lo, hi in intervals:
            t.insert(si(lo, hi))
        hits = {(n.interval.low, n.interval.high) for n in t.iter_overlaps(4, 11)}
        assert hits == {(0, 5), (3, 8), (10, 12), (11, 30)}

    def test_point_query(self):
        t = IntervalTree()
        t.insert(si(5, 5))
        assert t.search_overlap(5, 5) is not None
        assert t.search_overlap(4, 4) is None
        assert t.search_overlap(6, 6) is None


class TestDeletion:
    def test_delete_leaf_and_internal(self):
        t = IntervalTree()
        nodes = [t.insert(si(lo, lo + 2)) for lo in (10, 5, 15, 3, 7, 12, 20)]
        t.delete(nodes[3])  # leaf
        t.validate()
        t.delete(nodes[0])  # internal
        t.validate()
        assert len(t) == 5
        lows = [n.interval.low for n in t]
        assert lows == sorted(lows)

    def test_delete_everything(self):
        t = IntervalTree()
        nodes = [t.insert(si(i * 3, i * 3 + 1)) for i in range(20)]
        random.Random(1).shuffle(nodes)
        for node in nodes:
            t.delete(node)
            t.validate()
        assert len(t) == 0

    def test_delete_nil_rejected(self):
        t = IntervalTree()
        with pytest.raises(ValueError):
            t.delete(t.nil)


class TestBalance:
    def test_height_is_logarithmic_on_sorted_insert(self):
        t = IntervalTree()
        n = 1024
        for i in range(n):
            t.insert(si(i, i))
        # RB bound: height <= 2*log2(n+1).
        assert t.height() <= 20
        t.validate()

    def test_height_on_random_insert(self):
        rng = random.Random(7)
        t = IntervalTree()
        for _ in range(512):
            lo = rng.randrange(100_000)
            t.insert(si(lo, lo + rng.randrange(50)))
        assert t.height() <= 18
        t.validate()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 300), st.integers(0, 40)),
        min_size=1,
        max_size=120,
    ),
    st.tuples(st.integers(0, 340), st.integers(0, 40)),
)
def test_property_overlaps_match_bruteforce(spans, query):
    t = IntervalTree()
    stored = []
    for lo, length in spans:
        iv = si(lo, lo + length)
        t.insert(iv)
        stored.append((lo, lo + length))
    t.validate()
    qlo, qlen = query
    qhi = qlo + qlen
    expected = {(a, b) for a, b in stored if a <= qhi and qlo <= b}
    got = {(n.interval.low, n.interval.high) for n in t.iter_overlaps(qlo, qhi)}
    assert got == expected
    one = t.search_overlap(qlo, qhi)
    assert (one is not None) == bool(expected)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 30), st.booleans()),
        min_size=1,
        max_size=80,
    )
)
def test_property_interleaved_insert_delete_keeps_invariants(ops):
    t = IntervalTree()
    live = []
    for lo, length, delete in ops:
        if delete and live:
            victim = live.pop(lo % len(live))
            t.delete(victim)
        else:
            live.append(t.insert(si(lo, lo + length)))
        t.validate()
    assert len(t) == len(live)
