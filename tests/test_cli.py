"""The ``python -m repro`` command-line interface."""

import json

from repro.__main__ import main
from repro.api import JSON_SCHEMA_VERSION
from repro.common.config import RunConfig, SwordConfig
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    assert "hpccg" in out and "c_md" in out


def test_list_workloads_suite_filter(capsys):
    assert main(["list-workloads", "--suite", "hpc"]) == 0
    out = capsys.readouterr().out
    assert "hpccg" in out
    assert "c_md" not in out


def test_check_sword(capsys):
    # Exit 1: races found (0 is reserved for a clean run).
    assert main(["check", "plusplus-orig-yes", "--threads", "2"]) == 1
    out = capsys.readouterr().out
    assert "races: 2" in out


def test_check_clean_exit_code(capsys):
    assert main(["check", "atomic-orig-no", "--threads", "2"]) == 0
    assert "races: 0" in capsys.readouterr().out


def test_check_baseline(capsys):
    assert main(["check", "c_pi", "--tool", "baseline", "--threads", "2"]) == 0
    assert "race checking disabled" in capsys.readouterr().out


def test_check_oom_exit_code(capsys):
    assert main(["check", "amg2013_40", "--tool", "archer", "--threads", "2"]) == 2
    assert "OUT OF MEMORY" in capsys.readouterr().out


def test_list_workloads_json(capsys):
    assert main(["list-workloads", "--suite", "hpc", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert any(w["name"] == "hpccg" for w in payload)
    assert {"name", "suite", "racy", "seeded_races", "archer_misses"} <= set(
        payload[0]
    )


def test_check_json(capsys):
    assert main(["check", "plusplus-orig-yes", "--threads", "2", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["exit_code"] == 1
    assert payload["exit_meaning"] == "races found"
    assert payload["tool"] == "sword"
    assert len(payload["races"]) == 2
    assert {"pc_a", "pc_b", "address", "description"} <= set(payload["races"][0])
    # The shared metrics schema rides along under a stable key.
    metrics = payload["metrics"]
    assert set(metrics) == {"counters", "gauges", "histograms"}
    assert metrics["counters"]["sword.events"] == payload["stats"]["events"]
    assert metrics["counters"]["membound.violations"] == 0
    assert payload["stats"]["offline"]["intervals"] > 0


def test_check_metrics_and_trace_events(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "trace.json"
    assert (
        main(
            [
                "check", "plusplus-orig-yes", "--threads", "2",
                "--metrics", str(metrics_path),
                "--trace-events", str(trace_path),
            ]
        )
        == 1
    )
    capsys.readouterr()
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["sword.events"] > 0
    trace = json.loads(trace_path.read_text())
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    # Nested online and offline phases are both on the timeline.
    assert {"online", "offline", "flush", "tree-build"} <= names


def test_check_metrics_prometheus(tmp_path, capsys):
    prom_path = tmp_path / "metrics.prom"
    assert (
        main(
            ["check", "plusplus-orig-yes", "--threads", "2",
             "--metrics", str(prom_path)]
        )
        == 1
    )
    capsys.readouterr()
    text = prom_path.read_text()
    assert "repro_sword_events_total" in text
    assert 'le="+Inf"' in text


def test_watch_prints_live_races(capsys):
    assert main(["watch", "plusplus-orig-yes", "--threads", "2"]) == 1
    out = capsys.readouterr().out
    assert out.count("[live]") == 2
    assert "races: 2" in out
    assert "first-race=" in out


def test_watch_json(capsys):
    assert main(["watch", "plusplus-orig-yes", "--threads", "2", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["exit_code"] == 1
    assert len(payload["races"]) == 2
    assert payload["time_to_first_race"] is not None
    assert payload["pairs_analyzed"] > 0
    assert payload["metrics"]["counters"]["stream.pairs_analyzed"] > 0
    assert set(payload["stats"]["streaming"]) >= {"intervals", "races_found"}


def test_watch_stats_ticker(capsys):
    assert (
        main(["watch", "c_md", "--threads", "2", "--stats-every", "0"]) in (0, 1)
    )
    out = capsys.readouterr().out
    assert "[stats]" in out
    assert "events=" in out


def test_unknown_experiment(capsys):
    assert main(["experiment", "E99"]) == 1


def test_analyze_trace(tmp_path, capsys):
    trace = tmp_path / "trace"

    def program(m):
        a = m.alloc_scalar("a")

        def body(ctx):
            ctx.write(a, 0, float(ctx.tid))
        m.parallel(body, nthreads=2)

    tool = SwordTool(SwordConfig(log_dir=str(trace)))
    OpenMPRuntime(RunConfig(nthreads=2), tool=tool).run(program)
    assert main(["analyze", str(trace)]) == 1
    out = capsys.readouterr().out
    assert "races: 1" in out
    assert main(["analyze", str(trace), "--workers", "2"]) == 1
    capsys.readouterr()
    assert main(["analyze", str(trace), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["exit_code"] == 1
    assert len(payload["races"]) == 1
    assert payload["stats"]["intervals"] > 0
    assert payload["metrics"]["counters"]["offline.trees_built"] > 0
    capsys.readouterr()
    events_path = tmp_path / "trace-events.json"
    assert (
        main(["analyze", str(trace), "--trace-events", str(events_path)]) == 1
    )
    doc = json.loads(events_path.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"analyze", "offline", "tree-build"} <= names


def test_analyze_modes_and_fastpath_flags(tmp_path, capsys):
    trace = tmp_path / "trace"

    def program(m):
        a = m.alloc_scalar("a")

        def body(ctx):
            ctx.write(a, 0, float(ctx.tid))
        m.parallel(body, nthreads=2)

    tool = SwordTool(SwordConfig(log_dir=str(trace)))
    OpenMPRuntime(RunConfig(nthreads=2), tool=tool).run(program)

    payloads = {}
    for mode in ("serial", "parallel", "streaming"):
        assert main(["analyze", str(trace), "--mode", mode, "--json"]) == 1
        payloads[mode] = json.loads(capsys.readouterr().out)
    assert (
        payloads["serial"]["races"]
        == payloads["parallel"]["races"]
        == payloads["streaming"]["races"]
    )

    assert main(["analyze", str(trace), "--no-fastpath", "--json"]) == 1
    naive = json.loads(capsys.readouterr().out)
    assert naive["races"] == payloads["serial"]["races"]

    # --cache: second run serves pair verdicts from disk, same races.
    assert main(["analyze", str(trace), "--cache", "--json"]) == 1
    cold = json.loads(capsys.readouterr().out)
    assert main(["analyze", str(trace), "--cache", "--json"]) == 1
    warm = json.loads(capsys.readouterr().out)
    assert warm["races"] == cold["races"] == payloads["serial"]["races"]
    assert warm["metrics"]["counters"]["offline.pair_cache_hits"] > 0
    assert (trace / ".sword-cache").is_dir()


def _durable_trace(trace):
    """A small durable trace (journal + per-row CRCs) for salvage tests."""
    from repro.faults.harness import collect_trace

    collect_trace(
        "antidep1-orig-yes", trace, nthreads=2, seed=0, buffer_events=64
    )


def test_analyze_salvage_flag(tmp_path, capsys):
    trace = tmp_path / "trace"
    _durable_trace(trace)
    # Tear the tail of one thread log: strict now refuses the trace.
    log = next(trace.glob("thread_*.log"))
    log.write_bytes(log.read_bytes()[:-5])
    # Strict mode refuses the torn trace: uniform error exit, no traceback.
    assert main(["analyze", str(trace)]) == 2
    capsys.readouterr()
    assert main(["analyze", str(trace), "--salvage"]) in (0, 1)
    out = capsys.readouterr().out
    assert "integrity:" in out
    capsys.readouterr()
    assert main(["analyze", str(trace), "--salvage", "--json"]) in (0, 1)
    payload = json.loads(capsys.readouterr().out)
    assert payload["integrity"]["mode"] == "salvage"
    assert payload["integrity"]["races_possibly_missed"] is True
    assert payload["integrity"]["threads"]  # per-thread ledgers present


def test_check_salvage_flag(capsys):
    assert main(
        ["check", "plusplus-orig-yes", "--threads", "2", "--salvage", "--json"]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["integrity"]["mode"] == "salvage"
    assert payload["integrity"]["clean"] is True  # nothing was injected
    assert len(payload["races"]) == 2  # same verdicts as strict


def test_faults_inject_cli(tmp_path, capsys):
    trace = tmp_path / "trace"
    _durable_trace(trace)
    plan_path = tmp_path / "plan.json"
    assert main([
        "faults", "inject", str(trace),
        "--seed", "7", "--actions", "3", "--plan-out", str(plan_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "applied" in out
    plan = json.loads(plan_path.read_text())
    assert plan["seed"] == 7
    assert len(plan["actions"]) == 3
    # The injected trace still analyses in salvage mode (never crashes).
    assert main(["analyze", str(trace), "--salvage"]) in (0, 1)


def test_faults_inject_bad_dir_exit_code(tmp_path, capsys):
    assert main(["faults", "inject", str(tmp_path / "nope")]) == 2


def test_faults_sweep_cli(tmp_path, capsys):
    out_path = tmp_path / "sweep.json"
    assert main([
        "faults", "sweep", "antidep1-orig-yes",
        "--threads", "2", "--buffer-events", "64",
        "--max-points", "6", "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "kill-point sweep" in out or "PASS" in out
    artifact = json.loads(out_path.read_text())
    assert artifact["ok"] is True
    assert artifact["exit_code"] == 0
    assert artifact["points"]
    lossy = [p for p in artifact["points"] if p["kind"] != "clean-end"]
    assert all(p["integrity"] for p in lossy)


def test_check_json_reports_verdict_counts(capsys):
    assert main(["check", "staticlab_wshift", "--threads", "4", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    stats = payload["stats"]
    assert stats["sites_definite_race"] == 2
    assert stats["events_elided"] > 0
    assert stats["offline"]["site_pairs_skipped"] >= 0
    assert stats["offline"]["events_elided"] == stats["events_elided"]
    assert len(payload["races"]) == 1


def test_check_no_static_flag(capsys):
    # Same race set, nothing elided: the escape hatch restores full
    # instrumentation.
    assert main(
        ["check", "staticlab_wshift", "--threads", "4",
         "--no-static", "--json"]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["events_elided"] == 0
    assert payload["stats"]["sites_definite_race"] == 0
    assert len(payload["races"]) == 1


def test_analyze_no_static_flag(tmp_path, capsys):
    from repro.harness.tools import SwordDriver
    from repro.workloads import REGISTRY

    trace = tmp_path / "trace"
    SwordDriver().run(
        REGISTRY.get("staticlab_wshift"),
        nthreads=4,
        trace_dir=str(trace),
        keep_trace=True,
        run_offline=False,
    )
    # Report injection is data, not pruning: the synthesised race
    # survives --no-static (which only disables the pair skip).
    assert main(["analyze", str(trace), "--json"]) == 1
    with_skip = json.loads(capsys.readouterr().out)
    assert main(["analyze", str(trace), "--no-static", "--json"]) == 1
    without_skip = json.loads(capsys.readouterr().out)
    assert with_skip["races"] == without_skip["races"]
    assert len(with_skip["races"]) == 1
