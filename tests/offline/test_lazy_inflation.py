"""Digest-pruned lazy analysis is byte-identical to full inflation.

The compressed-trace property: with the meta-digest pre-filter on, the
race set must equal the eager (always-inflate) analysis byte-for-byte
across the corpus — clean traces, delta-filtered traces, and salvage
recovery of torn traces — while race-free regular workloads decompress
zero payload bytes.
"""

import json

import numpy as np
import pytest

from conftest import run_program
from repro import api
from repro.common.config import SwordConfig
from repro.common.errors import DigestVersionError
from repro.itree.digest import TreeDigest
from repro.offline.analyzer import SerialOfflineAnalyzer
from repro.offline.cache import ResultCache
from repro.offline.intervals import IntervalInventory
from repro.offline.options import (
    AnalysisOptions,
    FastPathOptions,
    PruningOptions,
)
from repro.sword import SwordTool, TraceDir


def disjoint_program(m):
    """Race-free: each thread owns a residue class of the array."""
    a = m.alloc_array("a", 64)

    def body(ctx):
        for i in range(ctx.tid, 64, ctx.nthreads):
            ctx.write(a, i, float(i))
        ctx.barrier()
        for i in range(ctx.tid, 64, ctx.nthreads):
            ctx.read(a, i)

    m.parallel(body)


def racy_program(m):
    """One unsynchronised scalar write per thread (a seeded race)."""
    a = m.alloc_array("a", 64)
    s = m.alloc_array("s", 1)

    def body(ctx):
        for i in range(ctx.tid, 64, ctx.nthreads):
            ctx.write(a, i, float(i))
        ctx.write(s, 0, float(ctx.tid))

    m.parallel(body)


def collect(program, trace_dir, **config):
    tool = SwordTool(
        SwordConfig(log_dir=str(trace_dir), buffer_events=32, **config)
    )
    run_program(program, nthreads=4, tool=tool)


def analyze(trace_dir, *, lazy=True, integrity="strict"):
    options = AnalysisOptions(
        integrity=integrity,
        pruning=PruningOptions(use_digests=lazy, lazy_inflate=lazy),
    )
    return api.analyze(str(trace_dir), options=options)


def race_bytes(result) -> bytes:
    return json.dumps(result.races.to_json(), sort_keys=True).encode()


def tear(trace_dir) -> None:
    """Truncate one thread log mid-frame (a killed run)."""
    log = sorted(trace_dir.glob("thread_*.log"))[0]
    data = log.read_bytes()
    assert len(data) > 3
    log.write_bytes(data[: 2 * len(data) // 3])


@pytest.mark.parametrize("program", [disjoint_program, racy_program])
@pytest.mark.parametrize("config", [{}, {"delta_filter": True}])
def test_lazy_eager_parity(tmp_path, program, config):
    collect(program, tmp_path, **config)
    lazy = analyze(tmp_path, lazy=True)
    eager = analyze(tmp_path, lazy=False)
    assert race_bytes(lazy) == race_bytes(eager)
    assert eager.stats.bytes_inflated >= lazy.stats.bytes_inflated


@pytest.mark.parametrize("config", [{}, {"delta_filter": True}])
def test_lazy_eager_parity_on_salvaged_torn_trace(tmp_path, config):
    collect(racy_program, tmp_path, durable=True, **config)
    tear(tmp_path)
    lazy = analyze(tmp_path, lazy=True, integrity="salvage")
    eager = analyze(tmp_path, lazy=False, integrity="salvage")
    assert race_bytes(lazy) == race_bytes(eager)
    assert lazy.integrity is not None


def test_pruned_pairs_inflate_zero_bytes(tmp_path):
    collect(disjoint_program, tmp_path)
    result = analyze(tmp_path, lazy=True)
    stats = result.stats
    assert len(result.races) == 0
    assert stats.concurrent_pairs > 0
    assert stats.pairs_pruned == stats.concurrent_pairs
    assert stats.frames_pruned > 0
    # The lazy-inflation claim itself: no payload byte was decompressed.
    assert stats.bytes_inflated == 0
    assert stats.frames_inflated == 0
    assert stats.trees_built == 0
    # The eager path pays for every frame on the same trace.
    eager = analyze(tmp_path, lazy=False)
    assert eager.stats.bytes_inflated > 0
    assert eager.stats.frames_inflated > 0


def test_racy_trace_inflates_only_what_it_compares(tmp_path):
    collect(racy_program, tmp_path)
    lazy = analyze(tmp_path, lazy=True)
    eager = analyze(tmp_path, lazy=False)
    assert len(lazy.races) > 0
    assert lazy.stats.bytes_inflated > 0  # racing frames must inflate
    assert race_bytes(lazy) == race_bytes(eager)


def test_interval_digests_ride_the_inventory(tmp_path):
    collect(disjoint_program, tmp_path)
    inventory = IntervalInventory(TraceDir(tmp_path))
    assert len(inventory) > 0
    for data in inventory.intervals.values():
        assert len(data.digests) == len(data.chunks)
        assert all(d is not None for d in data.digests)


class TestTreeDigestVersioning:
    def test_newer_payload_raises_typed_error(self):
        digest = TreeDigest(
            nodes=1, lo=0, hi=7, writes=1, reads=0,
            all_atomic=False, gcd=0, width=8,
        )
        payload = digest.to_json()
        assert TreeDigest.from_json(payload) == digest  # round trip
        assert TreeDigest.from_json({k: v for k, v in payload.items()
                                     if k != "version"}) == digest  # legacy
        payload["version"] = 99
        with pytest.raises(DigestVersionError):
            TreeDigest.from_json(payload)

    def test_cache_evicts_newer_version_entries_as_counted_misses(self, tmp_path):
        trace_path = tmp_path / "trace"
        collect(racy_program, trace_path)
        trace = TraceDir(trace_path)
        inventory = IntervalInventory(trace)
        interval = next(iter(inventory.intervals.values()))
        options = AnalysisOptions(
            fastpath=FastPathOptions(result_cache=True),
        )
        with SerialOfflineAnalyzer(trace, options=options) as analyzer:
            analyzer.build_tree(interval)
        cache = ResultCache(trace_path)
        path = cache._tree_path(cache.interval_token(interval))
        payload = json.loads(path.read_text())
        payload["digest"]["version"] = 99
        path.write_text(json.dumps(payload))
        assert cache.load_tree(interval) is None
        assert cache.misses == 1
        assert cache.corrupt_evictions == 1
        assert not path.exists()
