"""Corrupt persistent-cache entries must degrade to misses, never errors."""

import json

from repro.harness.tools import SwordDriver
from repro.obs import live, set_obs
from repro.offline.analyzer import SerialOfflineAnalyzer
from repro.offline.cache import ResultCache
from repro.offline.options import AnalysisOptions, FastPathOptions
from repro.sword import TraceDir
from repro.workloads import REGISTRY

WORKLOAD = "plusplus-orig-yes"


def _collect(trace_path):
    driver = SwordDriver()
    driver.run(
        REGISTRY.get(WORKLOAD), nthreads=2, seed=0,
        trace_dir=str(trace_path), keep_trace=True,
    )


def _cached_options():
    return AnalysisOptions(
        fastpath=FastPathOptions(enabled=True, result_cache=True)
    )


def test_read_evicts_corrupt_entry(tmp_path):
    cache = ResultCache(tmp_path)
    path = tmp_path / "entry.json"
    path.write_text('{"nodes": [1, 2')  # torn write
    assert cache._read(path) is None
    assert cache.corrupt_evictions == 1
    assert not path.exists()  # one miss, not one per run forever
    # Valid JSON of the wrong shape is equally corrupt.
    path.write_text('[1, 2, 3]')
    assert cache._read(path) is None
    assert cache.corrupt_evictions == 2
    assert not path.exists()
    # A plain missing file is a miss, not an eviction.
    assert cache._read(tmp_path / "absent.json") is None
    assert cache.corrupt_evictions == 2


def test_corrupt_cache_entries_recomputed_not_propagated(tmp_path):
    trace_path = tmp_path / "trace"
    _collect(trace_path)
    cold = SerialOfflineAnalyzer(
        TraceDir(trace_path), options=_cached_options()
    ).analyze()
    cache_root = trace_path / ".sword-cache"
    entries = sorted(cache_root.rglob("*.json"))
    assert entries, "cold run must have populated the cache"
    for path in entries:
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
    previous = set_obs(live())
    try:
        warm = SerialOfflineAnalyzer(
            TraceDir(trace_path), options=_cached_options()
        ).analyze()
        from repro.obs import get_obs

        snapshot = get_obs().registry.snapshot()
    finally:
        set_obs(previous)
    # Identical verdicts, recomputed from the trace; no exception escaped.
    assert warm.races.to_json() == cold.races.to_json()
    assert warm.stats.pair_cache_hits == 0
    assert (
        snapshot["counters"]["offline.pair_cache_corrupt_evictions"]
        >= len(entries)
    )


def test_field_level_garbage_evicted_then_restored(tmp_path):
    import shutil

    trace_path = tmp_path / "trace"
    _collect(trace_path)
    options = _cached_options()
    SerialOfflineAnalyzer(TraceDir(trace_path), options=options).analyze()
    cache_root = trace_path / ".sword-cache"
    # Force tree loads on the warm run: no pair verdicts to short-circuit.
    shutil.rmtree(cache_root / "pairs", ignore_errors=True)
    tree_entries = sorted((cache_root / "trees").glob("*.json"))
    assert tree_entries
    # Well-formed JSON dict, wrong field types: caught at parse, evicted.
    for victim in tree_entries:
        payload = json.loads(victim.read_text())
        payload["nodes"] = "not-a-node-list"
        victim.write_text(json.dumps(payload))
    previous = set_obs(live())
    try:
        result = SerialOfflineAnalyzer(
            TraceDir(trace_path), options=options
        ).analyze()
        from repro.obs import get_obs

        snapshot = get_obs().registry.snapshot()
    finally:
        set_obs(previous)
    assert result.races is not None
    assert (
        snapshot["counters"]["offline.pair_cache_corrupt_evictions"] >= 1
    )
    # The recompute re-stored valid entries over the evicted tokens.
    for victim in tree_entries:
        if victim.exists():
            reloaded = json.loads(victim.read_text())
            assert isinstance(reloaded["nodes"], list)
