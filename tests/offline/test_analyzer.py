"""Offline analyzer vs the exhaustive oracle, across programs and seeds."""

import numpy as np
import pytest

from repro.common.config import OfflineConfig
from repro.common.sourceloc import pc_of
from repro.offline import OfflineAnalyzer
from repro.sword import TraceDir

from conftest import sword_and_oracle


def check(program, trace_dir, *, nthreads=4, seed=0, yield_every=0):
    races, oracle, _rec, _rt = sword_and_oracle(
        program, trace_dir, nthreads=nthreads, seed=seed,
        yield_every=yield_every,
    )
    assert races.pc_pairs() == oracle.pc_pairs(), (
        f"sword={sorted(races.pc_pairs())} oracle={sorted(oracle.pc_pairs())}"
    )
    return races


def test_write_read_race_found(trace_dir):
    def program(m):
        a = m.alloc_array("a", 8)

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(a, 0, 1.0, pc=pc_of("t.c", 1))
            else:
                ctx.read(a, 0, pc=pc_of("t.c", 2))
        m.parallel(body)

    races = check(program, trace_dir)
    assert len(races) == 1


def test_read_read_is_not_a_race(trace_dir):
    def program(m):
        a = m.alloc_array("a", 8, fill=1)

        def body(ctx):
            ctx.read(a, 0)
        m.parallel(body)

    assert len(check(program, trace_dir)) == 0


def test_barrier_separation_suppresses_race(trace_dir):
    def program(m):
        a = m.alloc_array("a", 8)

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(a, 0, 1.0)
            ctx.barrier()
            if ctx.tid == 1:
                ctx.read(a, 0)
        m.parallel(body)

    assert len(check(program, trace_dir)) == 0


def test_common_lock_suppresses_race(trace_dir):
    def program(m):
        a = m.alloc_array("a", 8)

        def body(ctx):
            with ctx.critical():
                ctx.write(a, 0, float(ctx.tid))
        m.parallel(body)

    assert len(check(program, trace_dir)) == 0


def test_different_locks_do_not_suppress(trace_dir):
    def program(m):
        a = m.alloc_array("a", 8)
        l1 = m.new_lock("l1")
        l2 = m.new_lock("l2")

        def body(ctx):
            lock = l1 if ctx.tid % 2 == 0 else l2
            with ctx.locked(lock):
                ctx.write(a, 0, 1.0, pc=pc_of("locks.c", ctx.tid % 2 + 1))
        m.parallel(body, nthreads=2)

    races = check(program, trace_dir, nthreads=2)
    assert len(races) == 1


def test_atomic_pair_suppressed_mixed_not(trace_dir):
    def program(m):
        a = m.alloc_scalar("a", np.int64)
        b = m.alloc_scalar("b", np.int64)

        def body(ctx):
            ctx.atomic_add(a, 0, 1)           # atomic-atomic: fine
            if ctx.tid == 0:
                ctx.write(b, 0, 1, pc=pc_of("at.c", 10))   # plain write
            else:
                ctx.atomic_add(b, 0, 1, pc=pc_of("at.c", 11))
        m.parallel(body, nthreads=2)

    races = check(program, trace_dir, nthreads=2)
    assert len(races) == 1  # only the mixed pair on b


def test_strided_non_overlap_not_reported(trace_dir):
    """Figure-4 style: extents overlap but no byte is shared."""

    def program(m):
        a = m.alloc_array("a", 64, dtype=np.int32)  # 4-byte elements

        def body(ctx):
            # Even int32 slots vs odd int32 slots: interleaved, disjoint.
            if ctx.tid == 0:
                ctx.write_slice(a, 0, 64, np.zeros(32, np.int32), step=2)
            else:
                ctx.write_slice(a, 1, 64, np.ones(32, np.int32), step=2)
        m.parallel(body, nthreads=2)

    assert len(check(program, trace_dir, nthreads=2)) == 0


def test_strided_true_overlap_reported(trace_dir):
    def program(m):
        a = m.alloc_array("a", 64, dtype=np.int32)

        def body(ctx):
            if ctx.tid == 0:
                ctx.write_slice(a, 0, 64, np.zeros(22, np.int32), step=3,
                                pc=pc_of("stride.c", 1))
            else:
                ctx.write_slice(a, 0, 64, np.ones(16, np.int32), step=4,
                                pc=pc_of("stride.c", 2))
        m.parallel(body, nthreads=2)

    races = check(program, trace_dir, nthreads=2)
    assert len(races) == 1


def test_partial_word_overlap_detected(trace_dir):
    """Byte-level overlap of differently-sized accesses."""

    def program(m):
        a = m.alloc_array("a", 8, dtype=np.int64)
        b = m.alloc_array("view", 64, dtype=np.int8)

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(a, 0, 7, pc=pc_of("pw.c", 1))  # 8 bytes
            else:
                ctx.write(b, 0, 1, pc=pc_of("pw.c", 2))  # 1 byte, other array
        m.parallel(body, nthreads=2)

    # Different allocations never overlap.
    assert len(check(program, trace_dir, nthreads=2)) == 0


def test_nested_region_races(trace_dir):
    def program(m):
        y = m.alloc_scalar("y")

        def inner(ctx):
            ctx.write(y, 0, 1.0, pc=pc_of("nest.c", 9))

        def outer(ctx):
            ctx.parallel(inner, nthreads=2)
        m.parallel(outer, nthreads=2)

    races = check(program, trace_dir, nthreads=2)
    assert len(races) == 1


def test_seed_sweep_agreement(trace_dir):
    """Oracle equivalence holds across schedules and preemption rates."""

    def program(m):
        a = m.alloc_array("a", 32)
        total = m.alloc_scalar("t")

        def body(ctx):
            for i in ctx.for_range(32, schedule="dynamic", chunk=3):
                ctx.write(a, i, float(i), pc=pc_of("sweep.c", 1))
            v = ctx.read(a, 0, pc=pc_of("sweep.c", 2))
            ctx.reduce_add(total, 0, v, pc=pc_of("sweep.c", 3))
        m.parallel(body)

    import shutil
    import tempfile

    for seed in range(4):
        for yield_every in (0, 3):
            tmp = tempfile.mkdtemp(prefix="sweep-")
            try:
                check(program, tmp, seed=seed, yield_every=yield_every)
            finally:
                shutil.rmtree(tmp, ignore_errors=True)


def test_streaming_chunk_size_does_not_change_result(trace_dir):
    def program(m):
        a = m.alloc_array("a", 256)

        def body(ctx):
            for i in ctx.for_range(256, nowait=True):
                ctx.write(a, i, 1.0, pc=pc_of("chunked.c", 1))
            ctx.read(a, 0, pc=pc_of("chunked.c", 2))
        m.parallel(body)

    races, oracle, _rec, _rt = sword_and_oracle(program, trace_dir)
    for chunk_events in (1, 7, 1000):
        result = OfflineAnalyzer(
            TraceDir(trace_dir), OfflineConfig(chunk_events=chunk_events)
        ).analyze()
        assert result.races.pc_pairs() == races.pc_pairs() == oracle.pc_pairs()


def test_ilp_crosscheck_mode(trace_dir):
    def program(m):
        a = m.alloc_array("a", 32, dtype=np.int32)

        def body(ctx):
            step = 2 + ctx.tid
            ctx.write_slice(a, ctx.tid, 32, np.zeros(len(range(ctx.tid, 32, step)), np.int32),
                            step=step, pc=pc_of("x.c", ctx.tid + 1))
        m.parallel(body, nthreads=2)

    races, _oracle, _rec, _rt = sword_and_oracle(program, trace_dir, nthreads=2)
    checked = OfflineAnalyzer(
        TraceDir(trace_dir), OfflineConfig(use_ilp_crosscheck=True)
    ).analyze()
    assert checked.races.pc_pairs() == races.pc_pairs()


def test_stats_populated(trace_dir):
    def program(m):
        a = m.alloc_array("a", 16)

        def body(ctx):
            ctx.write(a, ctx.tid, 1.0)
        m.parallel(body)

    sword_and_oracle(program, trace_dir)
    result = OfflineAnalyzer(TraceDir(trace_dir)).analyze()
    assert result.stats.intervals > 0
    # The disjoint per-thread writes are fully decided from the frame
    # digests: every pair is pruned with zero payload bytes inflated.
    assert result.stats.pairs_pruned > 0
    assert result.stats.frames_pruned > 0
    assert result.stats.trees_built == 0
    assert result.stats.bytes_inflated == 0
    assert result.stats.total_seconds >= 0

    # With the meta-digest pre-filter off, the same trace builds trees
    # and reads events the eager way.
    from repro.offline.options import AnalysisOptions, PruningOptions

    eager = OfflineAnalyzer(
        TraceDir(trace_dir),
        options=AnalysisOptions(pruning=PruningOptions(use_digests=False)),
    ).analyze()
    assert eager.stats.trees_built > 0
    assert eager.stats.events_read > 0
    assert eager.stats.bytes_inflated > 0
