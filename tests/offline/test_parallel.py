"""Distributed offline analysis agrees with the serial analyzer."""

import numpy as np
import pytest

from repro.common.config import OfflineConfig, RunConfig, SchedulerConfig, SwordConfig
from repro.offline import OfflineAnalyzer, ParallelOfflineAnalyzer
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool, TraceDir


def racy_multi_region(m):
    a = m.alloc_array("a", 64)
    b = m.alloc_scalar("b")

    def phase1(ctx):
        if ctx.tid == 0:
            ctx.write(a, 0, 1.0)
        ctx.read(a, 0)

    def phase2(ctx):
        for i in ctx.for_range(64, nowait=True):
            ctx.write(a, i, float(i))
        ctx.write(b, 0, 1.0)

    m.parallel(phase1)
    m.parallel(phase2)


@pytest.fixture
def collected(trace_dir):
    tool = SwordTool(SwordConfig(log_dir=trace_dir, buffer_events=64))
    rt = OpenMPRuntime(
        RunConfig(nthreads=4, scheduler=SchedulerConfig(seed=1)), tool=tool
    )
    rt.run(racy_multi_region)
    return trace_dir


def test_parallel_matches_serial(collected):
    serial = OfflineAnalyzer(TraceDir(collected)).analyze()
    parallel = ParallelOfflineAnalyzer(
        TraceDir(collected), OfflineConfig(workers=3)
    ).analyze()
    assert parallel.races.pc_pairs() == serial.races.pc_pairs()
    assert parallel.stats.concurrent_pairs == serial.stats.concurrent_pairs


def test_single_worker_falls_back_to_serial(collected):
    result = ParallelOfflineAnalyzer(
        TraceDir(collected), OfflineConfig(workers=1)
    ).analyze()
    serial = OfflineAnalyzer(TraceDir(collected)).analyze()
    assert result.races.pc_pairs() == serial.races.pc_pairs()


def test_more_workers_than_pairs(collected):
    result = ParallelOfflineAnalyzer(
        TraceDir(collected), OfflineConfig(workers=64)
    ).analyze()
    serial = OfflineAnalyzer(TraceDir(collected)).analyze()
    assert result.races.pc_pairs() == serial.races.pc_pairs()
