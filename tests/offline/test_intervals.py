"""Interval inventory: the concurrency plan must match the label judgment."""

import itertools

import pytest

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.offline.intervals import IntervalInventory
from repro.omp import OpenMPRuntime
from repro.osl.concurrency import concurrent_intervals
from repro.sword import SwordTool, TraceDir


def build_inventory(program, trace_dir, *, nthreads=4, seed=0):
    tool = SwordTool(SwordConfig(log_dir=trace_dir, buffer_events=64))
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
        tool=tool,
    )
    rt.run(program)
    return IntervalInventory(TraceDir(trace_dir))


def assert_plan_matches_judgment(inventory):
    """The optimised pair plan == brute-force label comparison."""
    planned = set()
    for a, b in inventory.concurrent_pairs():
        key = tuple(sorted([a.key, b.key], key=lambda k: (k.gid, k.pid, k.bid)))
        assert key not in planned, f"pair yielded twice: {key}"
        planned.add(key)
    expected = set()
    for a, b in itertools.combinations(inventory.intervals.values(), 2):
        if a.key.gid == b.key.gid:
            continue
        if concurrent_intervals(a.label, b.label):
            key = tuple(
                sorted([a.key, b.key], key=lambda k: (k.gid, k.pid, k.bid))
            )
            expected.add(key)
    assert planned == expected


def test_flat_region_plan(trace_dir):
    def program(m):
        a = m.alloc_array("a", 16)

        def body(ctx):
            ctx.write(a, ctx.tid, 1.0)
            ctx.barrier()
            ctx.read(a, 0)
        m.parallel(body)

    inventory = build_inventory(program, trace_dir)
    assert_plan_matches_judgment(inventory)
    # 4 threads x 2+ intervals with data.
    assert len(inventory) >= 8


def test_multi_region_plan(trace_dir):
    def program(m):
        a = m.alloc_array("a", 16)

        def body(ctx):
            ctx.write(a, ctx.tid, 1.0)
        m.parallel(body, nthreads=2)
        m.parallel(body, nthreads=3)

    inventory = build_inventory(program, trace_dir)
    assert_plan_matches_judgment(inventory)
    # Cross-region pairs must be absent (serialised top-level regions).
    for a, b in inventory.concurrent_pairs():
        assert a.key.pid == b.key.pid


def test_nested_region_plan(trace_dir):
    def program(m):
        y = m.alloc_array("y", 8)

        def inner(ctx):
            ctx.write(y, 4 + ctx.tid, 1.0)

        def outer(ctx):
            ctx.write(y, ctx.tid, 1.0)
            ctx.parallel(inner, nthreads=2)
            ctx.write(y, 2 + ctx.tid, 1.0)
        m.parallel(outer, nthreads=2)

    inventory = build_inventory(program, trace_dir)
    assert_plan_matches_judgment(inventory)
    cross_region = [
        (a, b)
        for a, b in inventory.concurrent_pairs()
        if a.key.pid != b.key.pid
    ]
    assert cross_region, "nested sibling regions must be planned"


def test_deeper_nesting_plan(trace_dir):
    def program(m):
        z = m.alloc_array("z", 32)

        def level3(ctx):
            ctx.write(z, 16 + ctx.tid, 1.0)

        def level2(ctx):
            ctx.write(z, 8 + ctx.tid, 1.0)
            ctx.parallel(level3, nthreads=2)

        def level1(ctx):
            ctx.write(z, ctx.tid, 1.0)
            ctx.parallel(level2, nthreads=2)
        m.parallel(level1, nthreads=2)

    inventory = build_inventory(program, trace_dir)
    assert_plan_matches_judgment(inventory)


def test_barriers_split_intervals(trace_dir):
    def program(m):
        a = m.alloc_array("a", 8)

        def body(ctx):
            ctx.write(a, ctx.tid, 1.0)
            ctx.barrier()
            ctx.write(a, ctx.tid + 4, 1.0)
        m.parallel(body, nthreads=2)

    inventory = build_inventory(program, trace_dir, nthreads=2)
    assert_plan_matches_judgment(inventory)
    bids = {k.bid for k in inventory.intervals}
    assert {0, 1} <= bids
    # Cross-bid pairs never planned within one region.
    for a, b in inventory.concurrent_pairs():
        if a.key.pid == b.key.pid:
            assert a.key.bid == b.key.bid
