"""Serial, distributed, and streaming analyses are byte-identical.

The engine orients every pair comparison canonically and the RaceSet keeps
the canonical witness, so the three drivers — which analyze the same pairs
in very different orders — must serialise to exactly the same bytes on
every racy workload in the registry.
"""

import json
import shutil
import tempfile

import pytest

from repro.common.config import (
    OfflineConfig,
    RunConfig,
    SchedulerConfig,
    SwordConfig,
)
from repro.offline import OfflineAnalyzer, ParallelOfflineAnalyzer
from repro.omp import OpenMPRuntime
from repro.stream import replay_analyze
from repro.sword import SwordTool, TraceDir
from repro.workloads import REGISTRY

NTHREADS = 4
SEED = 0

#: Heavier parameterisations get scaled down for the unit-test tier
#: (mirrors tests/workloads/test_ground_truth.py).
FAST_PARAMS = {
    "lulesh": {"steps": 6},
    "amg2013_10": {"sweeps": 5},
    "amg2013_20": {"sweeps": 5},
}

#: Large-footprint runs exercised by the benchmark tier instead.
SLOW = {"amg2013_30", "amg2013_40"}

RACY = [w for w in REGISTRY if w.racy and w.name not in SLOW]


def blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


@pytest.mark.parametrize("workload", RACY, ids=lambda w: w.name)
def test_all_modes_byte_identical(workload):
    params = FAST_PARAMS.get(workload.name, {})
    trace_path = tempfile.mkdtemp(prefix=f"parity-{workload.name}-")
    try:
        tool = SwordTool(SwordConfig(log_dir=trace_path, buffer_events=256))
        rt = OpenMPRuntime(
            RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=SEED)),
            tool=tool,
        )
        rt.run(lambda m: workload.run_program(m, **params))

        # Some racy workloads are undetectable by any dynamic tool
        # (seeded_races == 0); parity must still hold on the empty set.
        serial = OfflineAnalyzer(TraceDir(trace_path)).analyze().races
        assert len(serial) == workload.seeded_races

        distributed = ParallelOfflineAnalyzer(
            TraceDir(trace_path), OfflineConfig(workers=2)
        ).analyze().races
        streaming = replay_analyze(trace_path).races

        gold = blob(serial)
        assert blob(distributed) == gold
        assert blob(streaming) == gold
    finally:
        shutil.rmtree(trace_path, ignore_errors=True)
