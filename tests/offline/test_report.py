"""Race reports and pc-pair deduplication."""

from repro.common.sourceloc import pc_of
from repro.offline.report import RaceSet, make_report


def rep(pc_a, pc_b, **kw):
    defaults = dict(address=0x100, write_a=True, write_b=False,
                    gid_a=0, gid_b=1)
    defaults.update(kw)
    return make_report(pc_a=pc_a, pc_b=pc_b, **defaults)


def test_pc_pair_is_normalised():
    r1 = rep(10, 20)
    r2 = rep(20, 10)
    assert r1.key == r2.key == (10, 20)
    # Operation flags follow their pcs through the swap.
    swapped = make_report(pc_a=20, pc_b=10, address=0, write_a=True,
                          write_b=False, gid_a=5, gid_b=6)
    assert swapped.write_a is False and swapped.write_b is True
    assert swapped.gid_a == 6 and swapped.gid_b == 5


def test_raceset_dedups_by_pair():
    rs = RaceSet()
    assert rs.add(rep(1, 2))
    assert not rs.add(rep(2, 1))
    assert rs.add(rep(1, 3))
    assert len(rs) == 2
    assert rs.pc_pairs() == {(1, 2), (1, 3)}
    assert (1, 2) in rs
    assert (2, 1) not in rs  # keys are stored normalised


def test_raceset_preserves_first_occurrence():
    rs = RaceSet()
    rs.add(rep(1, 2, address=111))
    rs.add(rep(1, 2, address=222))
    assert [r.address for r in rs] == [111]


def test_same_pc_pair_allows_self_race_site():
    """A write-write race on one source line is the (pc, pc) pair."""
    rs = RaceSet()
    rs.add(rep(5, 5))
    assert len(rs) == 1
    assert (5, 5) in rs


def test_describe_resolves_locations():
    pc = pc_of("report.c", 33, "f")
    r = rep(pc, pc)
    text = r.describe()
    assert "report.c:33" in text
    assert "write" in text


def test_update_and_reports():
    rs = RaceSet()
    rs.update([rep(1, 2), rep(3, 4), rep(1, 2)])
    assert len(rs.reports()) == 2
    assert len(rs.describe_all().splitlines()) == 2
