"""Text report rendering."""

from repro.common.sourceloc import pc_of
from repro.offline import OfflineAnalyzer
from repro.offline.textreport import REPORT_NAME, render_report, write_report
from repro.sword import TraceDir

from conftest import sword_and_oracle


def _analysis(trace_dir):
    def program(m):
        a = m.alloc_array("a", 8)

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(a, 0, 1.0, pc=pc_of("rep.c", 3, "f"))
            else:
                ctx.read(a, 0, pc=pc_of("rep.c", 7, "g"))
        m.parallel(body)

    sword_and_oracle(program, trace_dir)
    return OfflineAnalyzer(TraceDir(trace_dir)).analyze()


def test_render_contains_stats_and_sites(trace_dir):
    result = _analysis(trace_dir)
    text = render_report(result)
    assert "data races: 1" in text
    assert "rep.c:3" in text and "rep.c:7" in text
    assert "write" in text and "read" in text
    assert "concurrent interval pairs" in text


def test_write_report_into_trace_dir(trace_dir):
    result = _analysis(trace_dir)
    path = write_report(result, trace_dir, title="my run")
    assert path.name == REPORT_NAME
    assert "my run" in path.read_text()


def test_empty_report(trace_dir):
    def program(m):
        a = m.alloc_array("a", 8)

        def body(ctx):
            lo, hi = ctx.static_chunk(8)
            for i in range(lo, hi):
                ctx.write(a, i, 1.0)
        m.parallel(body)

    sword_and_oracle(program, trace_dir)
    result = OfflineAnalyzer(TraceDir(trace_dir)).analyze()
    text = render_report(result)
    assert "data races: 0" in text
