"""Fast-path parity: pruning, memoization, and the persistent cache must
be invisible in the output — byte-identical races, fast path on or off.
"""

import json
import shutil
import tempfile

import pytest

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.offline import (
    AnalysisOptions,
    FastPathOptions,
    SerialOfflineAnalyzer,
)
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool, TraceDir
from repro.workloads import REGISTRY

NTHREADS = 4
SEED = 0

NAIVE = AnalysisOptions(fastpath=FastPathOptions(enabled=False))
FAST = AnalysisOptions(fastpath=FastPathOptions(enabled=True))

#: Racy workloads from the DataRaceBench and paper-example suites — the
#: suites with hand-seeded ground truth (tests/workloads) — plus the
#: racy tasking programs for the execution-point dimension.
PARITY = [
    w
    for w in REGISTRY
    if w.racy and w.suite in ("dataracebench", "paper", "tasking")
]


def blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


def collect(workload, trace_path, **params):
    tool = SwordTool(SwordConfig(log_dir=trace_path, buffer_events=256))
    rt = OpenMPRuntime(
        RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=SEED)),
        tool=tool,
    )
    rt.run(lambda m: workload.run_program(m, **params))


@pytest.mark.parametrize("workload", PARITY, ids=lambda w: w.name)
def test_fastpath_byte_identical(workload):
    trace_path = tempfile.mkdtemp(prefix=f"fastpath-{workload.name}-")
    try:
        collect(workload, trace_path)
        trace = TraceDir(trace_path)
        naive = SerialOfflineAnalyzer(trace, options=NAIVE).analyze()
        fast = SerialOfflineAnalyzer(trace, options=FAST).analyze()
        assert blob(fast.races) == blob(naive.races)
        assert len(naive.races) == workload.seeded_races
        # The naive leg must not silently use any fast-path machinery.
        assert naive.stats.pairs_pruned == 0
        assert naive.stats.solver_memo_hits == 0
        assert naive.stats.solver_memo_misses == 0
    finally:
        shutil.rmtree(trace_path, ignore_errors=True)


def _residue_program(m):
    """Disjoint residue-class sweeps plus one genuine race on a scalar."""
    arr = m.alloc_array("grid", 64 * NTHREADS)
    hot = m.alloc_scalar("hot")

    def body(ctx):
        for i in range(ctx.tid, 64 * NTHREADS, NTHREADS):
            ctx.write(arr, i, float(i))
        if ctx.tid < 2:
            ctx.write(hot, 0, float(ctx.tid))

    m.parallel(body, nthreads=NTHREADS)


def test_pruning_fires_and_keeps_the_race(tmp_path):
    trace_path = str(tmp_path / "trace")
    tool = SwordTool(SwordConfig(log_dir=trace_path, buffer_events=256))
    OpenMPRuntime(
        RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=SEED)),
        tool=tool,
    ).run(_residue_program)
    trace = TraceDir(trace_path)
    naive = SerialOfflineAnalyzer(trace, options=NAIVE).analyze()
    fast = SerialOfflineAnalyzer(trace, options=FAST).analyze()
    assert blob(fast.races) == blob(naive.races)
    assert len(fast.races) >= 1
    assert fast.stats.pairs_pruned > 0
    # Pruned pairs skip tree building and solving entirely.
    assert fast.stats.ilp_solves <= naive.stats.ilp_solves


def test_persistent_cache_warm_run_identical(tmp_path):
    workload = REGISTRY.get("plusplus-orig-yes")
    trace_path = str(tmp_path / "trace")
    collect(workload, trace_path)
    cached = AnalysisOptions(
        fastpath=FastPathOptions(enabled=True, result_cache=True)
    )
    trace = TraceDir(trace_path)
    cold = SerialOfflineAnalyzer(trace, options=cached).analyze()
    assert cold.stats.pair_cache_hits == 0
    warm = SerialOfflineAnalyzer(TraceDir(trace_path), options=cached).analyze()
    assert warm.stats.pair_cache_hits > 0
    assert blob(warm.races) == blob(cold.races)
    gold = SerialOfflineAnalyzer(TraceDir(trace_path), options=NAIVE).analyze()
    assert blob(warm.races) == blob(gold.races)
    assert (tmp_path / "trace" / ".sword-cache").is_dir()


def test_cache_invalidation_on_trace_regeneration(tmp_path):
    """Rewriting the trace in place must invalidate every stale entry."""
    trace_path = str(tmp_path / "trace")
    racy = REGISTRY.get("plusplus-orig-yes")
    quiet = REGISTRY.get("antidep1-var-no")
    cached = AnalysisOptions(
        fastpath=FastPathOptions(enabled=True, result_cache=True)
    )

    collect(racy, trace_path)
    first = SerialOfflineAnalyzer(TraceDir(trace_path), options=cached).analyze()
    assert len(first.races) == racy.seeded_races > 0

    # Regenerate the trace in the same directory with the race-free
    # variant; the cache dir survives but its tokens must all miss.
    cache_dir = tmp_path / "trace" / ".sword-cache"
    saved = tmp_path / "saved-cache"
    shutil.copytree(cache_dir, saved)
    shutil.rmtree(trace_path)
    collect(quiet, trace_path)
    shutil.copytree(saved, cache_dir)

    second = SerialOfflineAnalyzer(TraceDir(trace_path), options=cached).analyze()
    assert second.stats.pair_cache_hits == 0
    assert len(second.races) == 0
    gold = SerialOfflineAnalyzer(TraceDir(trace_path), options=NAIVE).analyze()
    assert blob(second.races) == blob(gold.races)


def test_explicit_cache_dir(tmp_path):
    workload = REGISTRY.get("plusplus-orig-yes")
    trace_path = str(tmp_path / "trace")
    collect(workload, trace_path)
    cache_dir = tmp_path / "elsewhere"
    opts = AnalysisOptions(
        fastpath=FastPathOptions(
            enabled=True, result_cache=True, cache_dir=str(cache_dir)
        )
    )
    cold = SerialOfflineAnalyzer(TraceDir(trace_path), options=opts).analyze()
    warm = SerialOfflineAnalyzer(TraceDir(trace_path), options=opts).analyze()
    assert warm.stats.pair_cache_hits > 0
    assert blob(warm.races) == blob(cold.races)
    assert cache_dir.is_dir()
    assert not (tmp_path / "trace" / ".sword-cache").exists()


def test_memo_counts_surface_in_stats(tmp_path):
    trace_path = str(tmp_path / "trace")
    tool = SwordTool(SwordConfig(log_dir=trace_path, buffer_events=256))
    OpenMPRuntime(
        RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=SEED)),
        tool=tool,
    ).run(_residue_program)
    fast = SerialOfflineAnalyzer(TraceDir(trace_path), options=FAST).analyze()
    payload = fast.stats.to_json()
    for key in (
        "pairs_pruned",
        "solver_memo_hits",
        "solver_memo_misses",
        "pair_cache_hits",
        "tree_cache_disk_hits",
    ):
        assert key in payload
