"""Cross-cutting wiring: tools, engine, and drivers on one live bundle."""

from repro.harness.tools import driver
from repro.obs import live
from repro.stream.watch import watch
from repro.workloads import REGISTRY


def _span_names(obs):
    return [s.name for s in obs.tracer.spans]


def test_sword_run_produces_nested_online_offline_spans():
    obs = live()
    driver("sword").run(REGISTRY.get("plusplus-orig-yes"), nthreads=2, obs=obs)
    names = _span_names(obs)
    assert "online" in names and "offline" in names
    online = obs.tracer.find("online")[0]
    offline = obs.tracer.find("offline")[0]
    # Dynamic phase precedes the post-mortem analysis.
    assert online.end <= offline.start
    # The logger's flush spans nest inside the online phase...
    for flush in obs.tracer.find("flush"):
        assert online.start <= flush.start and flush.end <= online.end
    # ...and tree builds inside the offline phase.
    builds = obs.tracer.find("tree-build")
    assert builds
    for build in builds:
        assert offline.start <= build.start and build.end <= offline.end


def test_registry_mirrors_engine_stats():
    obs = live()
    result = driver("sword").run(
        REGISTRY.get("plusplus-orig-yes"), nthreads=2, obs=obs
    )
    counters = obs.registry.snapshot()["counters"]
    offline = result.stats["offline"]
    assert counters["offline.trees_built"] == offline["trees_built"]
    assert counters["offline.events_read"] == offline["events_read"]
    assert counters["offline.ilp_solves"] == offline["ilp_solves"]
    assert counters["sword.events"] == result.stats["events"]
    assert counters["sword.flushes"] == result.stats["flushes"]
    hist = obs.registry.snapshot()["histograms"]
    assert hist["offline.tree_build_seconds"]["count"] == offline["trees_built"]


def test_archer_run_publishes_batch_metrics():
    obs = live()
    result = driver("archer").run(
        REGISTRY.get("plusplus-orig-yes"), nthreads=2, obs=obs
    )
    counters = obs.registry.snapshot()["counters"]
    assert counters["archer.accesses"] == result.stats["accesses"]
    assert counters["archer.sync_ops"] == result.stats["sync_ops"]
    assert counters["archer.evictions"] == result.stats["evictions"]


def test_watch_streams_metrics_and_ticker():
    obs = live()
    lines = []
    result = watch(
        REGISTRY.get("c_md"),
        nthreads=2,
        obs=obs,
        stats_every=0.0,
        on_stats=lines.append,
    )
    assert result.metrics["counters"]["stream.pairs_analyzed"] > 0
    assert (
        result.metrics["gauges"]["stream.races"]["value"] == result.race_count
    )
    assert lines and all(line.startswith("[stats]") for line in lines)
    # Ticker lines carry live values from the shared registry.
    assert any("races=" in line for line in lines)


def test_watch_without_obs_pays_nothing():
    result = watch(REGISTRY.get("plusplus-orig-yes"), nthreads=2)
    assert result.metrics == {}
    assert result.race_count == 2
