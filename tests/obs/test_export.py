"""Exporters: JSON snapshot, Prometheus text exposition, the stats line."""

import json

from repro.obs import (
    MetricsRegistry,
    get_obs,
    live,
    prometheus_text,
    set_obs,
    stats_line,
    write_json,
)
from repro.obs.registry import NullRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("sword.events").inc(42)
    reg.gauge("sword.threads").set(4)
    h = reg.histogram("sword.flush_seconds", buckets=(0.001, 0.01))
    h.observe(0.0005)
    h.observe(0.5)
    return reg


def test_write_json_roundtrip(tmp_path):
    reg = _sample_registry()
    path = tmp_path / "metrics.json"
    write_json(reg.snapshot(), path)
    loaded = json.loads(path.read_text())
    assert loaded == reg.snapshot()


def test_prometheus_counters_and_gauges():
    text = prometheus_text(_sample_registry().snapshot())
    assert "# TYPE repro_sword_events_total counter" in text
    assert "repro_sword_events_total 42" in text
    assert "repro_sword_threads 4" in text
    assert "repro_sword_threads_max 4" in text


def test_prometheus_histogram_cumulative():
    text = prometheus_text(_sample_registry().snapshot())
    lines = [l for l in text.splitlines() if "flush_seconds_bucket" in l]
    assert lines == [
        'repro_sword_flush_seconds_bucket{le="0.001"} 1',
        'repro_sword_flush_seconds_bucket{le="0.01"} 1',
        'repro_sword_flush_seconds_bucket{le="+Inf"} 2',
    ]
    assert "repro_sword_flush_seconds_count 2" in text


def test_prometheus_empty_snapshot():
    assert prometheus_text(NullRegistry().snapshot()) == ""


def test_stats_line_picks_known_fields():
    reg = MetricsRegistry()
    reg.counter("sword.events").inc(10)
    reg.counter("sword.flushes").inc(2)
    reg.gauge("stream.races").set(3)
    line = stats_line(reg.snapshot())
    assert line.startswith("[stats] ")
    assert "events=10" in line
    assert "flushes=2" in line
    assert "races=3" in line


def test_stats_line_empty():
    assert "no metrics" in stats_line({})


def test_prometheus_labeled_series_share_one_type_line():
    reg = MetricsRegistry()
    reg.counter("serve.quota_rejections", labels={"tenant": "acme"}).inc(3)
    reg.counter("serve.quota_rejections", labels={"tenant": "globex"}).inc(1)
    text = prometheus_text(reg.snapshot())
    assert (
        text.count("# TYPE repro_serve_quota_rejections_total counter") == 1
    )
    assert 'repro_serve_quota_rejections_total{tenant="acme"} 3' in text
    assert 'repro_serve_quota_rejections_total{tenant="globex"} 1' in text


def test_prometheus_labeled_histogram_merges_le_label():
    reg = MetricsRegistry()
    h = reg.histogram(
        "serve.ttfr_seconds", buckets=(0.1, 1.0), labels={"tenant": "acme"}
    )
    h.observe(0.05)
    text = prometheus_text(reg.snapshot())
    assert 'repro_serve_ttfr_seconds_bucket{tenant="acme",le="0.1"} 1' in text
    assert 'repro_serve_ttfr_seconds_bucket{tenant="acme",le="+Inf"} 1' in text
    assert 'repro_serve_ttfr_seconds_count{tenant="acme"} 1' in text


def test_prometheus_exemplar_rides_its_bucket():
    reg = MetricsRegistry()
    h = reg.histogram("serve.ttfr_seconds", buckets=(0.1, 1.0))
    h.observe(0.05, exemplar="deadbeef")
    h.observe(0.5)  # no exemplar on this bucket
    lines = prometheus_text(reg.snapshot()).splitlines()
    low = next(l for l in lines if 'le="0.1"' in l)
    assert low.endswith('# {trace_id="deadbeef"} 0.05')
    mid = next(l for l in lines if 'le="1.0"' in l)
    assert "trace_id" not in mid


def test_prometheus_percentile_lines():
    reg = MetricsRegistry()
    h = reg.histogram("serve.shard_seconds", buckets=(0.01, 0.1, 1.0))
    for _ in range(99):
        h.observe(0.005)
    h.observe(0.5)
    h.observe(0.5)
    text = prometheus_text(reg.snapshot())
    assert "repro_serve_shard_seconds_p50 0.01" in text
    assert "repro_serve_shard_seconds_p95 0.01" in text
    assert "repro_serve_shard_seconds_p99 1.0" in text


def test_ambient_obs_default_and_install():
    assert not get_obs().enabled  # null by default
    bundle = live()
    previous = set_obs(bundle)
    try:
        assert get_obs() is bundle
    finally:
        set_obs(previous)
    assert not get_obs().enabled
