"""Phase-tracer semantics: nesting, ordering, Chrome trace export."""

import json

from repro.obs.tracer import NullTracer, PhaseTracer


class FakeClock:
    """Deterministic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def test_span_context_times_phase():
    tracer = PhaseTracer(clock=FakeClock())
    with tracer.span("work") as span:
        pass
    assert span.end is not None
    assert span.duration > 0
    assert tracer.find("work") == [span]


def test_nesting_depth_and_end_order():
    tracer = PhaseTracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner-1"):
            pass
        with tracer.span("inner-2"):
            pass
    names = [s.name for s in tracer.spans]
    # Completed spans land in end order: children before the parent.
    assert names == ["inner-1", "inner-2", "outer"]
    depths = {s.name: s.depth for s in tracer.spans}
    assert depths == {"outer": 0, "inner-1": 1, "inner-2": 1}


def test_nested_spans_contained_in_parent():
    tracer = PhaseTracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner = tracer.find("inner")[0]
    outer = tracer.find("outer")[0]
    assert outer.start <= inner.start
    assert inner.end <= outer.end


def test_abandoned_children_closed_with_parent():
    tracer = PhaseTracer(clock=FakeClock())
    outer = tracer.begin("outer")
    tracer.begin("leaked")
    tracer.end(outer)
    leaked = tracer.find("leaked")[0]
    assert leaked.end == outer.end


def test_span_args_recorded():
    tracer = PhaseTracer(clock=FakeClock())
    with tracer.span("flush", category="online", gid=3):
        pass
    span = tracer.find("flush")[0]
    assert span.category == "online"
    assert span.args == {"gid": 3}


def test_chrome_export_shape(tmp_path):
    tracer = PhaseTracer(clock=FakeClock())
    with tracer.span("outer", category="run"):
        with tracer.span("inner", category="offline", n=1):
            pass
    path = tmp_path / "trace.json"
    tracer.write_chrome(path)
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert events[0]["ph"] == "M"  # process-name metadata
    xs = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in xs} == {"outer", "inner"}
    for e in xs:
        assert set(e) >= {"name", "cat", "ph", "pid", "tid", "ts", "dur"}
        assert e["dur"] >= 0
    inner = next(e for e in xs if e["name"] == "inner")
    outer = next(e for e in xs if e["name"] == "outer")
    # Microsecond timestamps, containment preserved.
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    assert inner["args"] == {"n": 1}


def test_reset():
    tracer = PhaseTracer(clock=FakeClock())
    with tracer.span("a"):
        pass
    tracer.reset()
    assert len(tracer) == 0


def test_null_tracer_is_inert(tmp_path):
    tracer = NullTracer()
    with tracer.span("anything", category="x", k=1):
        pass
    assert len(tracer) == 0
    assert tracer.find("anything") == []
    path = tmp_path / "null.json"
    tracer.write_chrome(path)
    assert json.loads(path.read_text())["traceEvents"] == []


def test_null_span_reusable():
    tracer = NullTracer()
    cm = tracer.span("a")
    with cm:
        with tracer.span("b"):
            pass
    with cm:
        pass
