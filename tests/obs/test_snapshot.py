"""The shared run-stats schema used by every driver."""

import json

from repro.harness.tools import driver
from repro.obs import live, run_stats
from repro.offline.engine import AnalysisStats
from repro.stream.watch import watch
from repro.workloads import REGISTRY


def test_run_stats_merges_layers():
    class FakeTool:
        stats = {"events": 5, "flushes": 1}

    analysis = AnalysisStats(intervals=3, trees_built=2)
    stats = run_stats(
        FakeTool(), extra={"evictions": 7}, analyses={"offline": analysis}
    )
    assert stats["events"] == 5
    assert stats["evictions"] == 7
    assert stats["offline"]["intervals"] == 3
    assert stats["offline"]["trees_built"] == 2


def test_run_stats_baseline():
    assert run_stats(None) == {}


def test_driver_modes_share_schema():
    """Serial, distributed, and streaming stats all carry the full
    AnalysisStats schema under their mode key — the drift the shared
    helper exists to prevent."""
    w = REGISTRY.get("plusplus-orig-yes")
    serial = driver("sword").run(w, nthreads=2)
    mt = driver("sword").run(w, nthreads=2, mt_workers=2)
    watched = watch(w, nthreads=2)

    expected = set(AnalysisStats().to_json())
    assert set(serial.stats["offline"]) == expected
    assert set(mt.stats["offline_mt"]) == expected
    assert set(watched.stats["streaming"]) == expected
    # The online half is identical across sword modes.
    for key in ("events", "flushes", "bytes_compressed", "threads"):
        assert key in serial.stats and key in watched.stats


def test_archer_stats_keep_evictions():
    w = REGISTRY.get("plusplus-orig-yes")
    result = driver("archer").run(w, nthreads=2)
    assert "evictions" in result.stats
    assert result.stats["accesses"] > 0


def test_metrics_snapshot_on_result():
    w = REGISTRY.get("plusplus-orig-yes")
    obs = live()
    result = driver("sword").run(w, nthreads=2, obs=obs)
    assert result.metrics  # live backend -> non-empty snapshot
    assert result.metrics["counters"]["sword.events"] == result.stats["events"]
    json.dumps(result.metrics)  # JSON-serialisable end to end

    plain = driver("sword").run(w, nthreads=2)
    assert plain.metrics == {}  # ambient null backend
