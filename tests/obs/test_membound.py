"""The live N x (B + C) bound: gauge semantics and SwordTool wiring."""

import pytest

from repro.common.config import MiB, NodeConfig, SwordConfig
from repro.memory.accounting import NodeMemory
from repro.obs import (
    Instrumentation,
    MemoryBoundGauge,
    MemoryBoundViolation,
    MetricsRegistry,
    NullRegistry,
    live,
)
from repro.omp.runtime import OpenMPRuntime
from repro.common.config import RunConfig
from repro.sword.logger import SwordTool


def test_within_budget():
    reg = MetricsRegistry()
    gauge = MemoryBoundGauge(reg, per_thread_bytes=100)
    gauge.add_thread(2)
    gauge.observe(200)
    assert gauge.ok
    assert gauge.budget_bytes == 200
    assert reg.counter("membound.checks").value == 1
    assert reg.counter("membound.violations").value == 0
    assert reg.gauge("membound.utilisation").value == pytest.approx(1.0)


def test_violation_counted():
    gauge = MemoryBoundGauge(MetricsRegistry(), per_thread_bytes=100)
    gauge.add_thread()
    gauge.observe(101)
    assert not gauge.ok
    assert gauge.violation_count == 1


def test_strict_raises():
    gauge = MemoryBoundGauge(
        MetricsRegistry(), per_thread_bytes=100, strict=True
    )
    gauge.add_thread()
    with pytest.raises(MemoryBoundViolation) as exc:
        gauge.observe(150)
    assert exc.value.current == 150
    assert exc.value.budget == 100


def test_slack_tolerated():
    gauge = MemoryBoundGauge(
        MetricsRegistry(), per_thread_bytes=100, slack_bytes=50
    )
    gauge.add_thread()
    gauge.observe(149)
    assert gauge.ok


def test_exact_under_null_registry():
    """The verdict must not depend on the metrics backend."""
    gauge = MemoryBoundGauge(NullRegistry(), per_thread_bytes=100)
    gauge.add_thread()
    gauge.observe(101)
    assert gauge.violation_count == 1


def test_accountant_feed():
    reg = MetricsRegistry()
    accountant = NodeMemory(10 * MiB)
    gauge = MemoryBoundGauge(reg, per_thread_bytes=1000).attach(accountant)
    gauge.add_thread()
    accountant.charge(NodeMemory.TOOL, 1000)
    assert gauge.ok
    assert gauge.current_bytes == 1000
    # App-category traffic is not the tool's footprint.
    accountant.charge(NodeMemory.APP, 5 * MiB)
    assert gauge.current_bytes == 1000
    # An extra tool charge beyond the budget flags immediately.
    accountant.charge(NodeMemory.TOOL, 1)
    assert gauge.violation_count == 1
    # Releasing brings it back under; the past violation stays recorded.
    accountant.release(NodeMemory.TOOL, 1)
    assert gauge.current_bytes == 1000
    assert gauge.violation_count == 1


def _run_sword(config, obs):
    accountant = NodeMemory(NodeConfig().memory_limit)
    tool = SwordTool(config, accountant, obs=obs)

    def program(m):
        a = m.alloc_array("a", 64)

        def body(ctx):
            for i in range(32):
                ctx.write(a, i, float(ctx.tid))
        m.parallel(body, nthreads=2)

    OpenMPRuntime(RunConfig(nthreads=2), tool=tool).run(program)
    return tool, accountant


def test_sword_run_respects_bound(tmp_path):
    obs = live()
    tool, _ = _run_sword(SwordConfig(log_dir=str(tmp_path)), obs)
    assert tool.membound is not None
    assert tool.membound.ok
    assert tool.membound.threads == tool.stats["threads"]
    snap = obs.registry.snapshot()
    assert snap["counters"]["membound.violations"] == 0
    assert snap["counters"]["membound.checks"] >= tool.stats["threads"]
    assert (
        snap["gauges"]["membound.budget_bytes"]["value"]
        == tool.stats["threads"] * tool.per_thread_bytes
    )


def test_oversized_buffer_flagged(tmp_path):
    """A tool whose footprint exceeds its declared B + C gets caught.

    Simulates a buggy/oversized buffer by under-declaring the budget:
    the accountant still receives the real configured charge.
    """
    obs = live()
    config = SwordConfig(log_dir=str(tmp_path))
    accountant = NodeMemory(NodeConfig().memory_limit)
    tool = SwordTool(config, accountant, obs=obs)
    # Re-wire the gauge with a budget below what the tool will charge —
    # exactly what a regression in per-thread accounting would look like.
    tool.membound = MemoryBoundGauge(
        obs.registry, config.per_thread_bytes // 2
    ).attach(accountant)

    def program(m):
        a = m.alloc_scalar("a")

        def body(ctx):
            ctx.write(a, 0, 1.0)
        m.parallel(body, nthreads=2)

    OpenMPRuntime(RunConfig(nthreads=2), tool=tool).run(program)
    assert not tool.membound.ok
    assert obs.registry.counter("membound.violations").value > 0


def test_oversized_charge_strict_raises(tmp_path):
    accountant = NodeMemory(10 * MiB)
    gauge = MemoryBoundGauge(
        MetricsRegistry(), per_thread_bytes=MiB, strict=True
    ).attach(accountant)
    gauge.add_thread()
    accountant.charge(NodeMemory.TOOL, MiB)
    with pytest.raises(MemoryBoundViolation):
        accountant.charge(NodeMemory.TOOL, 1)


def test_instrumentation_bundle_defaults():
    bundle = Instrumentation()
    assert not bundle.enabled
    assert bundle.snapshot() == {}
    assert live().enabled
