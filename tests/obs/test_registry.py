"""Registry semantics: typed instruments, interning, reset, null no-op."""

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_tracks_max(self):
        g = Gauge("x")
        g.set(10)
        g.set(4)
        assert g.value == 4
        assert g.max == 10

    def test_inc_dec(self):
        g = Gauge("x")
        g.inc(3)
        g.inc(2)
        g.dec(4)
        assert g.value == 1
        assert g.max == 5


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("x", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(560.5)
        assert h.min == 0.5
        assert h.max == 500.0

    def test_mean_and_quantile(self):
        h = Histogram("x", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0):
            h.observe(v)
        assert h.mean == pytest.approx(60.5 / 4)
        assert h.quantile(0.5) == 10.0     # bucket upper bound
        assert h.quantile(1.0) == 100.0

    def test_overflow_quantile_uses_observed_max(self):
        h = Histogram("x", buckets=(1.0,))
        h.observe(7.0)
        assert h.quantile(1.0) == 7.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))

    def test_empty(self):
        h = Histogram("x")
        assert h.mean == 0.0
        assert h.quantile(0.9) == 0.0

    def test_to_json_has_inf_bucket(self):
        h = Histogram("x", buckets=(1.0,))
        h.observe(5.0)
        data = h.to_json()
        assert data["buckets"][-1] == ["+inf", 1]


class TestRegistry:
    def test_interning_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("g").set(2)
        reg.reset()
        assert "a" in reg and "g" in reg
        assert reg.counter("a").value == 0
        assert reg.gauge("g").value == 0

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": {"value": 7, "max": 7}}
        assert snap["histograms"]["h"]["count"] == 1
        assert reg.enabled


class TestNullRegistry:
    def test_all_instruments_are_noop(self):
        reg = NullRegistry()
        c = reg.counter("a")
        c.inc(100)
        g = reg.gauge("g")
        g.set(5)
        h = reg.histogram("h")
        h.observe(1.0)
        assert c.value == 0
        assert g.value == 0
        assert h.count == 0

    def test_shared_instrument(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b") is reg.gauge("c")

    def test_snapshot_empty_and_disabled(self):
        reg = NullRegistry()
        reg.counter("a").inc()
        assert reg.snapshot() == {}
        assert not reg.enabled
