"""The subset schema validator that guards CI's obs-smoke artifacts."""

import json
from pathlib import Path

import pytest

from repro.obs import live, prometheus_text
from repro.obs.schema import (
    SchemaError,
    check,
    main,
    validate,
    validate_prometheus_text,
)

SCHEMAS = Path(__file__).resolve().parents[2] / "schemas"


def test_type_enum_const_bounds():
    schema = {"type": "integer", "minimum": 0, "maximum": 10}
    assert validate(5, schema) == []
    assert validate(-1, schema)
    assert validate(True, schema)  # bools are not integers
    assert validate("done", {"enum": ["done", "failed"]}) == []
    assert validate("queued", {"enum": ["done", "failed"]})
    assert validate("X", {"const": "X"}) == []
    assert validate("M", {"const": "X"})


def test_object_required_and_additional():
    schema = {
        "type": "object",
        "required": ["name"],
        "properties": {"name": {"type": "string"}},
        "additionalProperties": False,
    }
    assert validate({"name": "scan"}, schema) == []
    assert any("missing required" in e for e in validate({}, schema))
    assert any("unexpected" in e for e in validate({"name": "x", "z": 1}, schema))


def test_array_items_and_bounds():
    schema = {"type": "array", "minItems": 1, "items": {"type": "number"}}
    assert validate([1.5, 2], schema) == []
    assert any("minItems" in e for e in validate([], schema))
    errors = validate([1, "two"], schema)
    assert errors and "[1]" in errors[0]


def test_pattern_and_anyof():
    assert validate("job-000001", {"pattern": "^job-[0-9]{6}$"}) == []
    assert validate("job-1", {"pattern": "^job-[0-9]{6}$"})
    branch = {"anyOf": [{"const": "X"}, {"const": "M"}]}
    assert validate("M", branch) == []
    assert any("anyOf" in e for e in validate("B", branch))


def test_unknown_keyword_is_an_error_not_a_pass():
    with pytest.raises(ValueError, match="unsupported keyword"):
        validate({}, {"patternProperties": {}})


def test_check_raises_with_every_violation():
    with pytest.raises(SchemaError) as exc:
        check({"a": 1}, {"required": ["b", "c"]})
    assert len(exc.value.errors) == 2


def test_job_trace_schema_accepts_a_minimal_stitched_trace():
    schema = json.loads((SCHEMAS / "job-trace.schema.json").read_text())
    trace = {
        "displayTimeUnit": "ms",
        "metadata": {
            "job_id": "job-000001",
            "tenant": "acme",
            "trace_id": "ab" * 16,
            "state": "done",
        },
        "traceEvents": [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "coordinator"},
            },
            {
                "name": "job",
                "cat": "serve-job",
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": 0.0,
                "dur": 1200.5,
                "args": {"trace_id": "ab" * 16},
            },
        ],
    }
    assert validate(trace, schema) == []
    trace["traceEvents"][1]["ts"] = -4.0
    assert validate(trace, schema)


def test_prometheus_text_from_live_registry_validates():
    obs = live()
    obs.registry.counter("serve.jobs_done").inc(3)
    obs.registry.gauge("membound.utilisation").set(0.5)
    h = obs.registry.histogram(
        "serve.ttfr_seconds", buckets=(0.1, 1.0), labels={"tenant": "acme"}
    )
    h.observe(0.05, exemplar="deadbeef")
    assert validate_prometheus_text(prometheus_text(obs.snapshot())) == []


def test_prometheus_grammar_rejects_bad_lines():
    assert any(
        "malformed sample" in e
        for e in validate_prometheus_text("not a metric line\n")
    )
    assert any(
        "no preceding # TYPE" in e
        for e in validate_prometheus_text("orphan_total 3\n")
    )
    assert any(
        "malformed comment" in e
        for e in validate_prometheus_text("# TIPE x counter\n")
    )


def test_cli_validates_files(tmp_path, capsys):
    schema = tmp_path / "s.json"
    schema.write_text(json.dumps({"type": "object", "required": ["ok"]}))
    good = tmp_path / "good.json"
    good.write_text('{"ok": true}')
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["--schema", str(schema), str(good)]) == 0
    assert main(["--schema", str(schema), str(bad)]) == 1
    prom = tmp_path / "m.prom"
    prom.write_text("# TYPE x counter\nx_total 1\n")
    assert main(["--prometheus", str(prom)]) == 0
    capsys.readouterr()  # swallow the ok/error chatter
