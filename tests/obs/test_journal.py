"""The flight recorder: bounded ring, filters, dumps, null twin."""

import json

from repro.obs import NULL_JOURNAL, FlightRecorder, NullJournal


def test_record_elides_none_fields():
    journal = FlightRecorder(capacity=8, clock=lambda: 1.5)
    event = journal.record("job-submit", job="j1", tenant=None, bytes=42)
    assert event == {"ts": 1.5, "kind": "job-submit", "job": "j1", "bytes": 42}


def test_ring_is_bounded_and_counts_drops():
    journal = FlightRecorder(capacity=3)
    for i in range(5):
        journal.record("tick", n=i)
    assert len(journal) == 3
    assert journal.recorded == 5
    assert journal.dropped == 2
    assert [e["n"] for e in journal.events()] == [2, 3, 4]  # oldest first


def test_filters_compose():
    journal = FlightRecorder(capacity=16)
    journal.record("job-submit", job="a", tenant="t1", trace_id="x")
    journal.record("job-submit", job="b", tenant="t2", trace_id="y")
    journal.record("job-complete", job="a", tenant="t1", trace_id="x")
    assert len(journal.events(kind="job-submit")) == 2
    assert len(journal.events(tenant="t1")) == 2
    assert [e["kind"] for e in journal.events(trace_id="x")] == [
        "job-submit",
        "job-complete",
    ]
    assert journal.events(job="a", kind="job-complete")[0]["tenant"] == "t1"


def test_limit_keeps_newest():
    journal = FlightRecorder(capacity=16)
    for i in range(6):
        journal.record("tick", n=i)
    assert [e["n"] for e in journal.events(limit=2)] == [4, 5]


def test_summary_tallies_kinds():
    journal = FlightRecorder(capacity=4)
    journal.record("a")
    journal.record("b")
    journal.record("b")
    summary = journal.summary()
    assert summary["capacity"] == 4
    assert summary["retained"] == 3
    assert summary["kinds"] == {"a": 1, "b": 2}


def test_dump_writes_jsonl(tmp_path):
    journal = FlightRecorder(capacity=8, clock=lambda: 2.0)
    journal.record("a", job="j1")
    journal.record("b", job="j2")
    path = tmp_path / "events.jsonl"
    assert journal.dump(path, job="j1") == 1
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == [{"job": "j1", "kind": "a", "ts": 2.0}]


def test_reset_clears_everything():
    journal = FlightRecorder(capacity=2)
    journal.record("a")
    journal.record("a")
    journal.record("a")
    journal.reset()
    assert len(journal) == 0
    assert journal.recorded == 0
    assert journal.dropped == 0
    assert journal.summary()["kinds"] == {}


def test_null_journal_is_inert(tmp_path):
    assert NULL_JOURNAL.enabled is False
    assert NULL_JOURNAL.record("anything", job="x") == {}
    assert NULL_JOURNAL.events() == []
    assert NULL_JOURNAL.summary() == {}
    assert len(NULL_JOURNAL) == 0
    assert isinstance(NULL_JOURNAL, NullJournal)
