"""Event elision accounting and the zero-event DEFINITE_RACE path."""

import json

import pytest

from repro.common.config import SwordConfig
from repro.harness.tools import SwordDriver
from repro.sword.reader import TraceDir
from repro.workloads import REGISTRY


def _run(name, **kw):
    return SwordDriver().run(REGISTRY.get(name), nthreads=4, seed=0, **kw)


def test_elided_plus_logged_equals_full_instrumentation():
    """Elision only suppresses emission: every event elided statically is
    one the full-instrumentation run would have logged."""
    for name in ("staticlab_disjoint", "c_arraysweep", "hpccg"):
        on = _run(name)
        off = _run(name, sword_config=SwordConfig(static_prescreen=False))
        assert on.stats["events_elided"] > 0
        assert (
            on.stats["events"] + on.stats["events_elided"]
            == off.stats["events"]
        )


def test_definite_race_reported_with_zero_region_events(tmp_path):
    """staticlab_wshift: both sites elide, the race is synthesised."""
    trace = tmp_path / "trace"
    on = _run("staticlab_wshift", trace_dir=str(trace), keep_trace=True)
    assert on.stats["sites_definite_race"] == 2
    assert on.stats["events_elided"] > 0
    assert len(on.races) == 1
    report = on.races.reports()[0]
    assert report.write_a and report.write_b

    # The trace itself carries no access events for the region: its
    # verdict table is the only witness source, and it has the reports.
    table = TraceDir(trace).static_verdicts
    assert table is not None
    assert table.race_reports()
    offline = on.stats["offline"]
    assert offline["sites_definite_race"] == 2
    assert offline["events_elided"] == on.stats["events_elided"]


def test_read_write_flavour_reports_mixed_access():
    on = _run("staticlab_rshift")
    assert len(on.races) == 1
    report = on.races.reports()[0]
    assert report.write_a != report.write_b  # one read, one write


def test_incomplete_region_stays_dynamic():
    on = _run("staticlab_incomplete")
    # Racy sites demoted to UNKNOWN: nothing elided, nothing synthesised,
    # yet the dynamic path still finds the race.
    assert on.stats["events_elided"] == 0
    assert on.stats["sites_definite_race"] == 0
    assert len(on.races) == 1


def test_disjoint_region_is_race_free_with_zero_events():
    on = _run("staticlab_disjoint")
    assert len(on.races) == 0
    assert on.stats["sites_proven_free"] == 2
    assert on.stats["sites_definite_race"] == 0


def test_proven_free_sites_counted_through_offline_stats():
    on = _run("c_pi")
    assert on.stats["sites_proven_free"] >= 2  # x site + reduction pc
    offline = on.stats["offline"]
    assert offline["sites_proven_free"] == on.stats["sites_proven_free"]
    assert offline["events_elided"] == on.stats["events_elided"]


def test_stats_json_serialisable():
    on = _run("staticlab_wshift")
    payload = json.loads(json.dumps(on.stats))
    for key in ("events_elided", "sites_proven_free", "sites_definite_race"):
        assert key in payload
    assert "site_pairs_skipped" in payload["offline"]
