"""Faults: corrupt verdict tables and the kill-anywhere interplay."""

import json

import pytest

import repro.api as api
from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.common.errors import TraceFormatError
from repro.faults.harness import kill_sweep
from repro.harness.tools import SwordDriver
from repro.omp import OpenMPRuntime, RecordingTool, ToolMux
from repro.sword import SwordTool, TraceDir
from repro.sword.traceformat import MANIFEST_NAME
from repro.static.table import STATIC_VERDICTS_KEY
from repro.workloads import REGISTRY


def _collect(name, trace, **kw):
    SwordDriver().run(
        REGISTRY.get(name),
        nthreads=4,
        seed=0,
        trace_dir=str(trace),
        keep_trace=True,
        run_offline=False,
        **kw,
    )


def _corrupt_table(trace):
    manifest_path = trace / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    assert STATIC_VERDICTS_KEY in manifest
    manifest[STATIC_VERDICTS_KEY]["crc32"] ^= 1
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))


def test_strict_mode_rejects_corrupt_table(tmp_path):
    trace = tmp_path / "trace"
    _collect("staticlab_wshift", trace)
    _corrupt_table(trace)
    with pytest.raises(TraceFormatError, match="CRC mismatch"):
        TraceDir(trace)


def test_salvage_falls_back_to_unknown_everything(tmp_path):
    trace = tmp_path / "trace"
    _collect("staticlab_wshift", trace)
    _corrupt_table(trace)
    td = TraceDir(trace, integrity="salvage")
    assert td.static_verdicts is None
    assert td.integrity.verdicts_dropped == 1

    # Analysis completes; with the table gone the synthesised witness is
    # lost (its events were elided) — the documented subset semantics.
    analysis = api.analyze(trace, integrity="salvage")
    assert analysis.integrity.verdicts_dropped == 1
    assert len(analysis.races) == 0


def test_dynamic_races_survive_table_loss(tmp_path):
    """A veto trace has full events: dropping the corrupt table loses no
    race, because UNKNOWN-everything means every pair is analysed."""
    trace = tmp_path / "veto"
    w = REGISTRY.get("staticlab_wshift")
    rec = RecordingTool()
    sword = SwordTool(SwordConfig(log_dir=str(trace), buffer_events=128))
    rt = OpenMPRuntime(
        RunConfig(nthreads=4, scheduler=SchedulerConfig(seed=0)),
        tool=ToolMux([rec, sword]),
    )
    rt.run(lambda master: w.run_program(master))
    reference = api.analyze(TraceDir(trace))
    _corrupt_table(trace)
    salvaged = api.analyze(trace, integrity="salvage")
    assert salvaged.integrity.verdicts_dropped == 1
    assert salvaged.races.pc_pairs() == reference.races.pc_pairs()
    assert len(salvaged.races) == 1


def test_instrumented_workload_unaffected_by_table_loss(tmp_path):
    """staticlab_incomplete elides nothing, so losing its (all-UNKNOWN)
    table changes no result at all."""
    trace = tmp_path / "trace"
    _collect("staticlab_incomplete", trace)
    reference = api.analyze(TraceDir(trace))
    _corrupt_table(trace)
    salvaged = api.analyze(trace, integrity="salvage")
    assert salvaged.races.pc_pairs() == reference.races.pc_pairs()


def test_kill_sweep_over_prescreened_workload():
    """Kill points truncate thread logs; the verdict table lives in the
    manifest, so the synthesised witness survives every kill."""
    result = kill_sweep(
        "staticlab_wshift", nthreads=2, seed=0, buffer_events=64, max_points=8
    )
    assert result.points, "sweep enumerated no kill points"
    assert result.clean_races == 1
    assert result.ok
    assert all(p.identical for p in result.points)


def test_kill_sweep_over_demoted_workload():
    result = kill_sweep(
        "staticlab_incomplete",
        nthreads=2,
        seed=0,
        buffer_events=64,
        max_points=8,
    )
    assert result.points
    assert result.clean_races == 1
    assert result.ok
