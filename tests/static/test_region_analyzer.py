"""Unit tests for the region classifier (``repro.static.analyzer``).

These drive :func:`analyze_region` directly over hand-built specs in a
bare :class:`~repro.memory.address_space.AddressSpace` — no runtime, no
trace — so each verdict rule is pinned down in isolation.
"""

import pytest

from repro.memory.address_space import AddressSpace
from repro.static import AffineSite, RegionSpec
from repro.static.analyzer import analyze_region, site_interval
from repro.static.model import (
    DEFINITE_RACE,
    PROVEN_FREE,
    UNKNOWN,
    chunk_bounds,
)

GIDS4 = [10, 11, 12, 13]


@pytest.fixture
def space():
    return AddressSpace()


def test_chunk_bounds_partition_the_iteration_space():
    for span in (1, 2, 3, 4, 7):
        for n in (0, 1, span - 1, span, span + 1, 64, 65):
            covered = []
            for slot in range(span):
                lo, hi = chunk_bounds(slot, span, n)
                assert 0 <= lo <= hi <= n
                covered.extend(range(lo, hi))
            assert covered == list(range(n))


def test_site_interval_matches_footprint(space):
    a = space.alloc_array("a", 64)
    site = AffineSite(pc=7, array=a, coef=2, offset=1, is_write=True, block=3)
    iv = site_interval(site, 4, 9)
    assert iv.low == a.addr(0) + (2 * 4 + 1) * a.itemsize
    assert iv.stride == 2 * a.itemsize
    assert iv.size == 3 * a.itemsize
    assert iv.count == 5
    assert iv.is_write and iv.pc == 7


def test_site_interval_empty_chunk_is_none(space):
    a = space.alloc_array("a", 8)
    site = AffineSite(pc=7, array=a)
    assert site_interval(site, 3, 3) is None
    assert site_interval(site, 5, 3) is None


def test_disjoint_sweep_is_proven_free(space):
    a = space.alloc_array("a", 64)
    b = space.alloc_array("b", 64)
    spec = RegionSpec(
        iterations=64,
        sites=(
            AffineSite(pc=1, array=b),
            AffineSite(pc=2, array=a, is_write=True),
        ),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    assert v.verdicts == {1: PROVEN_FREE, 2: PROVEN_FREE}
    assert v.elide == frozenset({1, 2})
    assert not v.reports
    assert v.sites_proven_free == 2 and v.sites_definite_race == 0


def test_shifted_write_collision_is_definite_race(space):
    a = space.alloc_array("a", 65)
    spec = RegionSpec(
        iterations=64,
        sites=(
            AffineSite(pc=1, array=a, is_write=True),
            AffineSite(pc=2, array=a, offset=1, is_write=True),
        ),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    assert v.verdicts == {1: DEFINITE_RACE, 2: DEFINITE_RACE}
    # DEFINITE_RACE sites are elided too: the report is synthesised.
    assert v.elide == frozenset({1, 2})
    assert v.reports
    for row in v.reports:
        assert len(row) == 11
        pc_a, pc_b, address = row[0], row[1], row[2]
        assert {pc_a, pc_b} <= {1, 2}
        assert a.addr(0) <= address < a.addr(0) + 65 * a.itemsize
        assert pc_a <= pc_b  # make_report's pc normalisation
        gid_a, gid_b = row[5], row[6]
        assert gid_a in GIDS4 and gid_b in GIDS4 and gid_a != gid_b


def test_read_read_overlap_is_not_a_race(space):
    a = space.alloc_array("a", 65)
    spec = RegionSpec(
        iterations=64,
        sites=(
            AffineSite(pc=1, array=a),
            AffineSite(pc=2, array=a, offset=1),
        ),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    assert v.verdicts == {1: PROVEN_FREE, 2: PROVEN_FREE}
    assert not v.reports


def test_self_overlapping_write_site_races_with_itself(space):
    a = space.alloc_array("a", 66)
    # block=2: iteration i writes [i, i+2) — adjacent chunks collide at
    # every chunk boundary, a single-site race.
    spec = RegionSpec(
        iterations=64,
        sites=(AffineSite(pc=9, array=a, is_write=True, block=2),),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    assert v.verdicts == {9: DEFINITE_RACE}
    assert v.reports
    assert all(row[0] == 9 and row[1] == 9 for row in v.reports)


def test_incomplete_region_demotes_racy_sites_to_unknown(space):
    a = space.alloc_array("a", 65)
    b = space.alloc_array("b", 64)
    spec = RegionSpec(
        iterations=64,
        sites=(
            AffineSite(pc=1, array=a, is_write=True),
            AffineSite(pc=2, array=a, offset=1, is_write=True),
            AffineSite(pc=3, array=b),
        ),
        complete=False,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    # Racy sites stay instrumented; the innocent bystander still elides.
    assert v.verdicts == {1: UNKNOWN, 2: UNKNOWN, 3: PROVEN_FREE}
    assert v.elide == frozenset({3})
    assert not v.reports


def test_phase_separation_suppresses_pairing(space):
    a = space.alloc_array("a", 65)
    # Same footprints as the definite-race case, but barrier-separated:
    # different phases never pair.
    spec = RegionSpec(
        iterations=64,
        sites=(
            AffineSite(pc=1, array=a, is_write=True, phase=0),
            AffineSite(pc=2, array=a, offset=1, is_write=True, phase=1),
        ),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    assert v.verdicts == {1: PROVEN_FREE, 2: PROVEN_FREE}


def test_different_arrays_never_pair(space):
    a = space.alloc_array("a", 64)
    b = space.alloc_array("b", 64)
    spec = RegionSpec(
        iterations=64,
        sites=(
            AffineSite(pc=1, array=a, is_write=True),
            AffineSite(pc=2, array=b, is_write=True),
        ),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    assert set(v.verdicts.values()) == {PROVEN_FREE}


def test_non_static_schedule_demotes_affine_sites(space):
    a = space.alloc_array("a", 64)
    spec = RegionSpec(
        iterations=64,
        schedule="dynamic",
        sites=(AffineSite(pc=1, array=a, is_write=True),),
        reduction_pcs=(2,),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    # Reductions serialise under the critical lock regardless of the
    # schedule; affine footprints depend on it and must demote.
    assert v.verdicts == {1: UNKNOWN, 2: PROVEN_FREE}
    assert v.elide == frozenset({2})


def test_reduction_pcs_are_proven_free(space):
    spec = RegionSpec(iterations=64, reduction_pcs=(7, 8), complete=True)
    v = analyze_region(spec, pid=5, gids=GIDS4)
    assert v.verdicts == {7: PROVEN_FREE, 8: PROVEN_FREE}
    assert v.elide == frozenset({7, 8})


def test_more_threads_than_iterations(space):
    a = space.alloc_array("a", 8)
    spec = RegionSpec(
        iterations=2,  # slots 2..3 get empty chunks (None footprints)
        sites=(AffineSite(pc=1, array=a, is_write=True),),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=GIDS4)
    assert v.verdicts == {1: PROVEN_FREE}


def test_single_thread_team_cannot_race(space):
    a = space.alloc_array("a", 65)
    spec = RegionSpec(
        iterations=64,
        sites=(
            AffineSite(pc=1, array=a, is_write=True),
            AffineSite(pc=2, array=a, offset=1, is_write=True),
        ),
        complete=True,
    )
    v = analyze_region(spec, pid=5, gids=[3])
    assert set(v.verdicts.values()) == {PROVEN_FREE}
