"""Soundness properties of the verdicts against the dynamic ground truth.

These runs attach SWORD *alongside* a recording oracle through
``ToolMux``.  The mux only elides when every tool consents, and the
recorder never does — so the trace carries the **full** event stream
*and* the persisted verdict table.  That is exactly the setup where a
wrong PROVEN_FREE verdict would be caught: the dynamic path analyses
every pair, and any race at a supposedly-free pc is a soundness bug.
"""

import json

import pytest

import repro.api as api
from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.offline import oracle_races
from repro.offline.options import AnalysisOptions, PruningOptions
from repro.omp import OpenMPRuntime, RecordingTool, ToolMux
from repro.sword import SwordTool, TraceDir
from repro.workloads import REGISTRY

WORKLOADS = [
    "staticlab_disjoint",
    "staticlab_wshift",
    "staticlab_rshift",
    "staticlab_incomplete",
    "c_jacobi01",
    "c_loopA.solution1",
    "hpccg",
]

NO_SKIP = AnalysisOptions(pruning=PruningOptions(static_skip=False))


def _blob(races) -> bytes:
    return json.dumps(races.to_json(), sort_keys=True).encode()


def _veto_run(name, trace_path, *, nthreads=4, seed=0):
    """Run one workload under recorder+SWORD; returns (rec, rt)."""
    w = REGISTRY.get(name)
    rec = RecordingTool()
    sword = SwordTool(SwordConfig(log_dir=str(trace_path), buffer_events=128))
    rt = OpenMPRuntime(
        RunConfig(
            nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)
        ),
        tool=ToolMux([rec, sword]),
    )
    rt.run(lambda master: w.run_program(master))
    return rec, rt


@pytest.mark.parametrize("name", WORKLOADS)
def test_proven_free_never_dynamically_racy(name, tmp_path):
    trace = tmp_path / name
    rec, rt = _veto_run(name, trace)
    td = TraceDir(trace)
    table = td.static_verdicts
    assert table is not None, "veto run must still persist the table"

    # Full dynamic analysis, no pair skipped.
    analysis = api.analyze(td, options=NO_SKIP)
    free = table.proven_free_by_pid()
    for report in analysis.races:
        assert report.pc_a not in free.get(report.pid_a, ()), report.describe()
        assert report.pc_b not in free.get(report.pid_b, ()), report.describe()


@pytest.mark.parametrize("name", WORKLOADS)
def test_oracle_agrees_under_the_mux(name, tmp_path):
    """SWORD (with verdicts + injection) matches the exhaustive oracle."""
    trace = tmp_path / name
    rec, rt = _veto_run(name, trace)
    analysis = api.analyze(trace)
    oracle = oracle_races(rec, rt.mutexsets)
    assert analysis.races.pc_pairs() == oracle.pc_pairs()


def test_pair_skip_changes_work_not_results(tmp_path):
    """On a full-event trace the engine skips proven-free pairs — and the
    race set does not change."""
    trace = tmp_path / "veto"
    _veto_run("hpccg", trace)
    skipping = api.analyze(trace)
    exhaustive = api.analyze(trace, options=NO_SKIP)
    assert _blob(skipping.races) == _blob(exhaustive.races)
    assert skipping.stats.site_pairs_skipped > 0
    assert exhaustive.stats.site_pairs_skipped == 0
    # Skipped pairs never reach the overlap solver.
    assert (
        skipping.stats.overlap_candidates
        <= exhaustive.stats.overlap_candidates
    )


def test_definite_race_injection_survives_pair_skip(tmp_path):
    trace = tmp_path / "veto"
    _veto_run("staticlab_wshift", trace)
    skipping = api.analyze(trace)
    exhaustive = api.analyze(trace, options=NO_SKIP)
    # The dynamic witness (exhaustive) and the synthesised one (injected
    # on both paths) must coincide byte for byte.
    assert _blob(skipping.races) == _blob(exhaustive.races)
    assert len(skipping.races) == 1
