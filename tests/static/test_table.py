"""The persisted verdict table: payload roundtrip, CRC, schema."""

import json
from pathlib import Path

import pytest

from repro.common.errors import TraceFormatError
from repro.memory.address_space import AddressSpace
from repro.obs.schema import validate
from repro.static import AffineSite, RegionSpec
from repro.static.analyzer import analyze_region
from repro.static.table import (
    STATIC_VERDICTS_SCHEMA,
    STATIC_VERDICTS_VERSION,
    StaticVerdictTable,
)

SCHEMAS = Path(__file__).resolve().parents[2] / "schemas"


def _example_table() -> StaticVerdictTable:
    space = AddressSpace()
    a = space.alloc_array("a", 65)
    b = space.alloc_array("b", 64)
    table = StaticVerdictTable()
    table.add_region(
        analyze_region(
            RegionSpec(
                iterations=64,
                sites=(
                    AffineSite(pc=1, array=b),
                    AffineSite(pc=2, array=a, is_write=True),
                    AffineSite(pc=3, array=a, offset=1, is_write=True),
                ),
                reduction_pcs=(4,),
                complete=True,
            ),
            pid=7,
            gids=[0, 1, 2, 3],
        )
    )
    table.events_elided = 123
    return table


def test_payload_roundtrip():
    table = _example_table()
    clone = StaticVerdictTable.from_payload(table.to_payload())
    assert clone.events_elided == table.events_elided
    assert clone.regions == {
        pid: {
            "proven_free": entry["proven_free"],
            "definite_race": entry["definite_race"],
            "reports": [tuple(r) for r in entry["reports"]],
        }
        for pid, entry in table.regions.items()
    }
    assert clone.sites_proven_free == 2  # pc 1 + reduction pc 4
    assert clone.sites_definite_race == 2  # pcs 2 and 3
    assert clone.proven_free_by_pid() == {7: frozenset({1, 4})}
    assert clone.race_reports()


def test_payload_validates_against_embedded_schema():
    payload = _example_table().to_payload()
    assert validate(payload, STATIC_VERDICTS_SCHEMA) == []


def test_checked_in_schema_matches_embedded():
    # CI validates artifacts against the checked-in file; drift between
    # it and the schema the code enforces would make CI meaningless.
    on_disk = json.loads((SCHEMAS / "static-verdicts.schema.json").read_text())
    assert on_disk == STATIC_VERDICTS_SCHEMA


def test_crc_mismatch_raises():
    payload = _example_table().to_payload()
    payload["crc32"] = (payload["crc32"] + 1) % 2**32
    with pytest.raises(TraceFormatError, match="CRC mismatch"):
        StaticVerdictTable.from_payload(payload)


def test_body_tamper_fails_crc():
    payload = _example_table().to_payload()
    payload["events_elided"] += 1  # schema-valid, CRC-covered
    with pytest.raises(TraceFormatError, match="CRC mismatch"):
        StaticVerdictTable.from_payload(payload)


def test_version_mismatch_raises():
    table = _example_table()
    body = table._body()
    body["version"] = STATIC_VERDICTS_VERSION + 1
    from repro.sword.traceformat import crc32

    body["crc32"] = crc32(
        json.dumps(
            {k: v for k, v in body.items() if k != "crc32"}, sort_keys=True
        ).encode("utf-8")
    )
    with pytest.raises(TraceFormatError, match="version"):
        StaticVerdictTable.from_payload(body)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda p: p.pop("regions"),
        lambda p: p.__setitem__("events_elided", -1),
        lambda p: p.__setitem__("extra", 1),
        lambda p: next(iter(p["regions"].values())).pop("reports"),
        lambda p: next(iter(p["regions"].values()))["reports"].append([1, 2]),
    ],
)
def test_schema_violations_raise(mutate):
    payload = _example_table().to_payload()
    mutate(payload)
    with pytest.raises(TraceFormatError, match="schema"):
        StaticVerdictTable.from_payload(payload)


def test_empty_table_roundtrip():
    table = StaticVerdictTable()
    payload = table.to_payload()
    assert validate(payload, STATIC_VERDICTS_SCHEMA) == []
    clone = StaticVerdictTable.from_payload(payload)
    assert clone.regions == {} and clone.events_elided == 0
    assert clone.proven_free_by_pid() == {}
    assert clone.race_reports() == []
