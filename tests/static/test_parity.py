"""Static pre-screening parity: eliding events must not change results.

The contract of the whole subsystem: for every workload, the race set
with pre-screening on (events elided, reports synthesised) is
**byte-identical** — same JSON serialisation — to the race set of a full
instrumentation run.  Sweeps the corpora (paper, DataRaceBench, OmpSCR,
HPC, staticlab), plus salvage-mode traces and all three analysis modes.
"""

import json

import pytest

import repro.api as api
from repro.common.config import SwordConfig
from repro.harness.tools import SwordDriver
from repro.offline.options import AnalysisOptions
from repro.workloads import REGISTRY


def _blob(races) -> bytes:
    return json.dumps(races.to_json(), sort_keys=True).encode()


#: (workload, seed) across every corpus with declared region specs, plus
#: spec-free workloads (paper, DataRaceBench) where pre-screening must be
#: an exact no-op.
CASES = [
    ("figure5-truedep", 0),
    ("antidep1-orig-yes", 0),
    ("atomic-orig-no", 0),
    ("c_pi", 0),
    ("c_loopA.solution1", 0),
    ("c_loopA.badSolution", 0),
    ("c_jacobi01", 0),
    ("c_jacobi02", 1),
    ("c_arraysweep", 0),
    ("c_md", 0),
    ("cpp_qsomp3", 0),
    ("hpccg", 0),
    ("minife", 0),
    ("lulesh", 0),
    ("amg2013_10", 0),
    ("staticlab_disjoint", 0),
    ("staticlab_wshift", 0),
    ("staticlab_wshift", 1),
    ("staticlab_rshift", 0),
    ("staticlab_incomplete", 0),
]

#: Workloads whose specs must actually elide something — the perf claim.
ELIDING = {
    "c_pi",
    "c_loopA.solution1",
    "c_jacobi01",
    "c_jacobi02",
    "c_arraysweep",
    "cpp_qsomp3",
    "hpccg",
    "minife",
    "lulesh",
    "amg2013_10",
    "staticlab_disjoint",
    "staticlab_wshift",
    "staticlab_rshift",
}


@pytest.mark.parametrize("name,seed", CASES)
def test_static_on_off_race_sets_byte_identical(name, seed):
    w = REGISTRY.get(name)
    on = SwordDriver().run(w, nthreads=4, seed=seed)
    off = SwordDriver().run(
        w,
        nthreads=4,
        seed=seed,
        sword_config=SwordConfig(static_prescreen=False),
    )
    assert _blob(on.races) == _blob(off.races)
    assert off.stats["events_elided"] == 0
    assert off.stats["sites_proven_free"] == 0
    if name in ELIDING:
        assert on.stats["events_elided"] > 0
        assert on.stats["events"] < off.stats["events"]
    else:
        # No spec (or no verdict): the event streams match exactly too.
        assert on.stats["events"] == off.stats["events"]


@pytest.mark.parametrize("name", ["staticlab_wshift", "c_jacobi01", "hpccg"])
def test_salvage_mode_inherits_verdicts(name, tmp_path):
    """Salvage analysis of an *intact* trace sees the same verdict table
    (including synthesised reports) as strict analysis."""
    trace = tmp_path / "trace"
    SwordDriver().run(
        REGISTRY.get(name),
        nthreads=4,
        seed=0,
        trace_dir=str(trace),
        keep_trace=True,
        run_offline=False,
    )
    strict = api.analyze(trace)
    salvage = api.analyze(trace, integrity="salvage")
    assert _blob(strict.races) == _blob(salvage.races)
    assert salvage.integrity is not None
    assert salvage.integrity.verdicts_dropped == 0


@pytest.mark.parametrize("name", ["staticlab_wshift", "c_loopA.badSolution"])
def test_all_analysis_modes_agree_on_prescreened_trace(name, tmp_path):
    trace = tmp_path / "trace"
    SwordDriver().run(
        REGISTRY.get(name),
        nthreads=4,
        seed=0,
        trace_dir=str(trace),
        keep_trace=True,
        run_offline=False,
    )
    serial = api.analyze(trace, mode="serial")
    parallel = api.analyze(
        trace, mode="parallel", options=AnalysisOptions(workers=2)
    )
    streaming = api.analyze(trace, mode="streaming")
    assert _blob(serial.races) == _blob(parallel.races)
    assert _blob(serial.races) == _blob(streaming.races)
    assert serial.stats.sites_proven_free == parallel.stats.sites_proven_free
    assert (
        serial.stats.sites_definite_race == parallel.stats.sites_definite_race
    )


def test_no_static_config_knob_disables_prescreening(tmp_path):
    """`SwordConfig(static_prescreen=False)` leaves no verdict table."""
    from repro.sword.reader import TraceDir

    trace = tmp_path / "trace"
    SwordDriver().run(
        REGISTRY.get("staticlab_disjoint"),
        nthreads=4,
        seed=0,
        sword_config=SwordConfig(static_prescreen=False),
        trace_dir=str(trace),
        keep_trace=True,
        run_offline=False,
    )
    td = TraceDir(trace)
    assert td.static_verdicts is None
