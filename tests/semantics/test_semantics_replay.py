"""Operational semantics: replay equivalence and well-formedness rules."""

import numpy as np
import pytest

from repro.common.errors import AnalysisError
from repro.common.events import Access
from repro.omp import RecordingTool
from repro.semantics import SemanticsReplay

from conftest import run_program


def replay_of(program, *, nthreads=4, seed=0):
    tool = RecordingTool()
    rt = run_program(program, nthreads=nthreads, seed=seed, tool=tool)
    sem = SemanticsReplay().feed_tape(tool.tape, tool.regions)
    return sem, tool, rt


def test_replay_reconstructs_runtime_chains():
    """The semantics must agree with the runtime's own structural view."""

    def program(m):
        a = m.alloc_array("a", 32)

        def inner(ctx):
            ctx.write(a, 16 + ctx.tid, 1.0)

        def outer(ctx):
            ctx.write(a, ctx.tid, 1.0)
            ctx.barrier()
            if ctx.tid == 1:
                ctx.parallel(inner, nthreads=2)
            ctx.write(a, 8 + ctx.tid, 1.0)
        m.parallel(outer, nthreads=3)

    sem, tool, _rt = replay_of(program, nthreads=3)
    recorded = tool.accesses()
    assert len(sem.accesses) == len(recorded)
    for ours, runtime_view in zip(sem.accesses, recorded):
        assert ours.chain == runtime_view.chain
        assert ours.gid == runtime_view.gid


def test_replay_tracks_classic_labels():
    def program(m):
        a = m.alloc_array("a", 8)

        def body(ctx):
            ctx.write(a, ctx.tid, 1.0)
            ctx.barrier()
            ctx.write(a, ctx.tid + 4, 1.0)
        m.parallel(body, nthreads=2)

    sem, _tool, _rt = replay_of(program, nthreads=2)
    # After the barrier each thread's last pair offset advanced by the span.
    post = [a.classic for a in sem.accesses if a.access.addr >= a.access.addr]
    labels = {a.classic[-1].offset for a in sem.accesses}
    assert labels == {0, 1, 2, 3}  # slots 0/1 before, 2/3 after the barrier


def test_replay_mutex_sets():
    def program(m):
        x = m.alloc_scalar("x")
        lock = m.new_lock()

        def body(ctx):
            with ctx.locked(lock):
                ctx.write(x, 0, 1.0)
            ctx.write(x, 0, 2.0)
        m.parallel(body, nthreads=2)

    sem, _tool, _rt = replay_of(program, nthreads=2)
    locked = [a for a in sem.accesses if a.mutexes]
    unlocked = [a for a in sem.accesses if not a.mutexes]
    assert len(locked) == 2
    assert len(unlocked) == 2


def test_may_race_judgment():
    def program(m):
        x = m.alloc_scalar("x")

        def body(ctx):
            if ctx.tid == 0:
                ctx.write(x, 0, 1.0)
            else:
                ctx.read(x, 0)
            ctx.barrier()
            if ctx.tid == 0:
                ctx.read(x, 0)
        m.parallel(body, nthreads=2)

    sem, _tool, _rt = replay_of(program, nthreads=2)
    w = next(a for a in sem.accesses if a.access.is_write)
    reads = [a for a in sem.accesses if not a.access.is_write]
    same_interval_read = next(r for r in reads if r.chain[-1].bid == 0)
    later_read = next(r for r in reads if r.chain[-1].bid == 1)
    assert SemanticsReplay.may_race(w, same_interval_read)
    assert not SemanticsReplay.may_race(w, later_read)  # barrier-ordered


def test_sequential_accesses_ignored():
    sem = SemanticsReplay()
    out = sem.access(0, Access(addr=8, size=8, count=1, stride=0,
                               is_write=True, is_atomic=False, pc=1))
    assert out is None
    assert sem.accesses == []


class TestWellFormedness:
    def test_unknown_region_rejected(self):
        sem = SemanticsReplay()
        with pytest.raises(AnalysisError):
            sem.task_begin(0, 99, 0)

    def test_double_fork_rejected(self):
        sem = SemanticsReplay()
        sem.parallel_begin(1, parent_gid=0, span=2)
        with pytest.raises(AnalysisError):
            sem.parallel_begin(1, parent_gid=0, span=2)

    def test_slot_out_of_range(self):
        sem = SemanticsReplay()
        sem.parallel_begin(1, parent_gid=0, span=2)
        with pytest.raises(AnalysisError):
            sem.task_begin(5, 1, 2)

    def test_too_many_members(self):
        sem = SemanticsReplay()
        sem.parallel_begin(1, parent_gid=0, span=1)
        sem.task_begin(0, 1, 0)
        with pytest.raises(AnalysisError):
            sem.task_begin(1, 1, 0)

    def test_barrier_outside_region(self):
        sem = SemanticsReplay()
        with pytest.raises(AnalysisError):
            sem.barrier_arrive(0, 0)

    def test_departure_before_full_arrival(self):
        sem = SemanticsReplay()
        sem.parallel_begin(1, parent_gid=0, span=2)
        sem.task_begin(1, 1, 0)
        sem.task_begin(2, 1, 1)
        sem.barrier_arrive(1, 0)
        with pytest.raises(AnalysisError):
            sem.barrier_depart(1, 1)

    def test_over_arrival(self):
        sem = SemanticsReplay()
        sem.parallel_begin(1, parent_gid=0, span=1)
        sem.task_begin(1, 1, 0)
        sem.barrier_arrive(1, 0)
        with pytest.raises(AnalysisError):
            sem.barrier_arrive(1, 0)

    def test_region_end_with_live_members(self):
        sem = SemanticsReplay()
        sem.parallel_begin(1, parent_gid=0, span=1)
        sem.task_begin(1, 1, 0)
        with pytest.raises(AnalysisError):
            sem.parallel_end(1)

    def test_release_unheld_mutex(self):
        sem = SemanticsReplay()
        with pytest.raises(AnalysisError):
            sem.mutex_released(0, 5)

    def test_task_end_wrong_region(self):
        sem = SemanticsReplay()
        sem.parallel_begin(1, parent_gid=0, span=1)
        sem.task_begin(1, 1, 0)
        with pytest.raises(AnalysisError):
            sem.task_end(1, 42)


def test_every_workload_tape_is_well_formed():
    """The runtime's emissions always satisfy the semantic rules."""
    from repro.workloads import REGISTRY

    for name in ("plusplus-orig-yes", "c_jacobi01", "nestedparallel-orig-yes"):
        w = REGISTRY.get(name)
        tool = RecordingTool()
        run_program(lambda m: w.run_program(m), tool=tool, seed=3)
        SemanticsReplay().feed_tape(tool.tape, tool.regions)  # must not raise
