"""Every workload's ground truth, verified under both tools and the oracle.

For each registered benchmark:

* SWORD (trace + offline analysis) finds exactly the seeded race site pairs
  and agrees with the exhaustive oracle on the same execution;
* ARCHER finds exactly ``seeded - archer_misses`` of them (the misses being
  the eviction / happens-before-masking mechanisms), and never reports a
  pair SWORD does not;
* race-free benchmarks produce zero reports from every tool (the
  no-false-alarm property the paper stresses).
"""

import shutil
import tempfile

import pytest

from repro.archer import ArcherTool
from repro.common.config import (
    ArcherConfig,
    RunConfig,
    SchedulerConfig,
    SwordConfig,
)
from repro.offline import OfflineAnalyzer, oracle_races
from repro.omp import OpenMPRuntime, RecordingTool, ToolMux
from repro.sword import SwordTool, TraceDir
from repro.workloads import REGISTRY

NTHREADS = 4
SEED = 0

#: Heavier parameterisations get scaled down for the unit-test tier.
FAST_PARAMS = {
    "lulesh": {"steps": 6},
    "amg2013_10": {"sweeps": 5},
    "amg2013_20": {"sweeps": 5},
    "amg2013_30": {"sweeps": 5},
    "amg2013_40": {"sweeps": 5},
}

#: Large-footprint runs exercised by the benchmark tier instead.
SLOW = {"amg2013_30", "amg2013_40"}

WORKLOADS = [w for w in REGISTRY if w.name not in SLOW]


def _run_both(workload):
    params = FAST_PARAMS.get(workload.name, {})
    trace = tempfile.mkdtemp(prefix=f"gt-{workload.name.replace('/', '_')}-")
    try:
        rec = RecordingTool()
        sword_tool = SwordTool(SwordConfig(log_dir=trace, buffer_events=256))
        rt = OpenMPRuntime(
            RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=SEED)),
            tool=ToolMux([rec, sword_tool]),
        )
        rt.run(lambda m: workload.run_program(m, **params))
        sword = OfflineAnalyzer(TraceDir(trace)).analyze().races
        oracle = oracle_races(rec, rt.mutexsets)
    finally:
        shutil.rmtree(trace, ignore_errors=True)

    archer_tool = ArcherTool(ArcherConfig())
    rt2 = OpenMPRuntime(
        RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=SEED)),
        tool=archer_tool,
    )
    rt2.run(lambda m: workload.run_program(m, **params))
    return sword, oracle, archer_tool.races


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_ground_truth(workload):
    sword, oracle, archer = _run_both(workload)

    # SWORD is exact w.r.t. the oracle on this execution.
    assert sword.pc_pairs() == oracle.pc_pairs()

    # The seeded count is the reproduction's documented ground truth.
    assert len(sword) == workload.seeded_races, (
        f"sword found {len(sword)}, seeded {workload.seeded_races}"
    )

    if not workload.racy:
        assert len(sword) == 0
        assert len(archer) == 0
        return

    # ARCHER: a subset of SWORD's pairs, short exactly the known misses
    # (schedule-dependent workloads have no fixed count; E8 sweeps them).
    assert archer.pc_pairs() <= sword.pc_pairs()
    if not workload.archer_schedule_dependent:
        assert len(archer) == workload.seeded_races - workload.archer_misses


def test_registry_metadata_consistency():
    for w in REGISTRY:
        assert w.suite in (
            "dataracebench",
            "ompscr",
            "hpc",
            "paper",
            "tasking",
            "staticlab",
        )
        assert w.seeded_races >= 0
        assert 0 <= w.archer_misses <= max(w.seeded_races, 1) or w.seeded_races == 0
        if not w.racy:
            assert w.seeded_races == 0 and w.documented_races == 0
        assert w.description, f"{w.name} lacks a description"


def test_registry_lookup_errors():
    with pytest.raises(KeyError):
        REGISTRY.get("no-such-benchmark")
    with pytest.raises(ValueError):
        from repro.harness.experiments.common import suite_workloads

        suite_workloads("dataracebench", include=["no-such"])


def test_make_params_rejects_unknown_override():
    w = REGISTRY.get("hpccg")
    with pytest.raises(KeyError):
        w.make_params(bogus=1)
    p = w.make_params(n=64)
    assert p.n == 64 and p.iters == w.params["iters"]
