"""The paper's worked examples as executable checks."""

import pytest

from repro.common.sourceloc import GLOBAL_PCS
from repro.workloads import REGISTRY

from conftest import sword_and_oracle


def test_figure2_reports_exactly_r1_r2_r3(trace_dir):
    """Figure 2's three races, by name."""
    w = REGISTRY.get("figure2-nested")
    races, oracle, _rec, _rt = sword_and_oracle(
        lambda m: w.run_program(m), trace_dir, nthreads=4
    )
    assert races.pc_pairs() == oracle.pc_pairs()
    assert len(races) == 3
    described = "\n".join(r.describe() for r in races)
    # R1: the nested team's own y writes.
    assert described.count("figure2.c:21") >= 2
    # R2: y across sibling regions.
    assert "figure2.c:31" in described
    # R3: x across sibling regions.
    assert "figure2.c:12" in described and "figure2.c:33" in described


def test_figure2_detection_is_schedule_invariant_for_sword():
    import shutil
    import tempfile

    w = REGISTRY.get("figure2-nested")
    verdicts = set()
    for seed in range(5):
        tmp = tempfile.mkdtemp(prefix="fig2-")
        try:
            races, _o, _rec, _rt = sword_and_oracle(
                lambda m: w.run_program(m), tmp, nthreads=4, seed=seed
            )
            verdicts.add(frozenset(races.pc_pairs()))
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    assert len(verdicts) == 1


def test_section2_eviction_single_pair(trace_dir):
    w = REGISTRY.get("section2-eviction")
    races, oracle, _rec, _rt = sword_and_oracle(
        lambda m: w.run_program(m), trace_dir, nthreads=4
    )
    assert races.pc_pairs() == oracle.pc_pairs()
    assert len(races) == 1
    (race,) = races.reports()
    assert "section2.c:4" in race.describe()


def test_figure5_boundary_race(trace_dir):
    w = REGISTRY.get("figure5-truedep")
    races, oracle, _rec, _rt = sword_and_oracle(
        lambda m: w.run_program(m), trace_dir, nthreads=2
    )
    assert races.pc_pairs() == oracle.pc_pairs()
    assert len(races) == 1
