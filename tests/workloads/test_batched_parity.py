"""Scalar vs columnar workload variants: race reports byte-identical.

Every converted workload keeps its scalar loop behind ``batched=0``; the
columnar fast path must produce the *same* offline race report, byte for
byte, because the coalescer groups records by site and each site's
subsequence is order-preserved by the conversion.
"""

import json

import pytest

import repro.workloads.hpc.suite  # noqa: F401  (registers workloads)
import repro.workloads.ompscr.suite  # noqa: F401
import repro.workloads.paper.suite  # noqa: F401
from repro.common.config import SwordConfig
from repro.harness.tools import SwordDriver
from repro.workloads import REGISTRY

CONVERTED = [
    "c_loopA.badSolution",
    "c_loopB.badSolution1",
    "c_arraysweep",
    "section2-eviction",
    "figure5-truedep",
    "amg2013_10",
]


def _blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


@pytest.mark.parametrize("name", CONVERTED)
@pytest.mark.parametrize("seed", [0, 3])
def test_batched_races_byte_identical_to_scalar(name, seed):
    workload = REGISTRY.get(name)
    scalar = SwordDriver().run(workload, nthreads=4, seed=seed, batched=0)
    batched = SwordDriver().run(workload, nthreads=4, seed=seed, batched=1)
    assert _blob(batched.races) == _blob(scalar.races)
    if workload.racy:
        assert len(batched.races) >= 1


@pytest.mark.parametrize("name", CONVERTED)
def test_batched_path_actually_engaged(name):
    # Static pre-screening can elide a converted workload's sites wholesale
    # (c_arraysweep is ~100% proven free); turn it off so the batched
    # instrumentation path actually has events to log.
    full = SwordConfig(static_prescreen=False)
    workload = REGISTRY.get(name)
    batched = SwordDriver().run(
        workload, nthreads=4, seed=0, batched=1, sword_config=full
    )
    scalar = SwordDriver().run(
        workload, nthreads=4, seed=0, batched=0, sword_config=full
    )
    assert batched.stats["batched_events"] > 0
    assert scalar.stats["batched_events"] == 0
    # The fast path replaces scalar events rather than adding to them.
    assert batched.stats["batched_events"] <= batched.stats["events"]


def test_batched_is_the_default():
    """Converted workloads take the fast path unless asked not to."""
    result = SwordDriver().run(REGISTRY.get("figure5-truedep"), nthreads=2, seed=0)
    assert result.stats["batched_events"] > 0
