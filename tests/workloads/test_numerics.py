"""Workload kernels compute real results (the substrate isn't a stub)."""

import numpy as np
import pytest

from repro.common.config import RunConfig, SchedulerConfig
from repro.omp import OpenMPRuntime, RecordingTool
from repro.workloads import REGISTRY


def run_with_arrays(workload_name, *, nthreads=4, seed=0, **params):
    """Run a workload; return {array name: SharedArray} of its allocations."""
    w = REGISTRY.get(workload_name)
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed))
    )
    handles = {}

    def program(m):
        space = m.runtime.space
        original = space.alloc_array

        def recording_alloc(name, shape, dtype=np.float64, **kw):
            arr = original(name, shape, dtype, **kw)
            handles[name] = arr
            return arr

        space.alloc_array = recording_alloc
        try:
            w.run_program(m, **params)
        finally:
            space.alloc_array = original

    rt.run(program)
    return handles


def test_c_pi_converges():
    # The workload asserts |pi - estimate| < 1e-3 internally; double-check.
    arrays = run_with_arrays("c_pi")
    assert abs(arrays["pi"].data[0] - np.pi) < 1e-3


def test_qsomp_sorts_for_real_across_seeds():
    for seed in (0, 1, 2, 3):
        arrays = run_with_arrays("cpp_qsomp1", seed=seed)
        assert (np.diff(arrays["data"].data) >= 0).all()
    for name in ("cpp_qsomp2", "cpp_qsomp5", "cpp_qsomp6"):
        arrays = run_with_arrays(name, seed=1)
        assert (np.diff(arrays["data"].data) >= 0).all()


def test_reduction_and_matrixvector_self_check():
    arrays = run_with_arrays("reduction-orig-no", nthreads=3)
    assert arrays["total"].data[0] == 2.0 * 64
    arrays = run_with_arrays("matrixvector-orig-no")
    assert np.allclose(arrays["y"].data, 2.0 * 24)


def test_jacobi_diffuses_from_boundary():
    arrays = run_with_arrays("c_jacobi01")
    u = arrays["u"].data
    # Heat entered from both unit boundaries: interior neighbours are warm,
    # everything stays within [0, 1].
    assert u[1] > 0 and u[-2] > 0
    assert (u >= 0).all() and (u <= 1).all()


def test_fft_preserves_signal_energy_scale():
    arrays = run_with_arrays("c_fft")
    re, im = arrays["re"].data, arrays["im"].data
    energy = float((re**2 + im**2).sum())
    n = re.shape[0]
    # The DIF butterflies applied here scale total energy by n for a real
    # sine input; the point is it's neither zeroed nor blown to inf/nan.
    assert np.isfinite(energy)
    assert energy > 0


def test_lu_produces_upper_triangular_factor():
    arrays = run_with_arrays("c_lu")
    a = arrays["A"].data
    n = a.shape[0]
    # After elimination, the strictly-lower part holds multipliers (finite)
    # and the diagonal is nonzero (the matrix was diagonally dominant).
    assert np.isfinite(a).all()
    assert (np.abs(np.diag(a)) > 0).all()


def test_hpccg_updates_solution():
    arrays = run_with_arrays("hpccg", n=128, iters=4)
    assert np.abs(arrays["x"].data).sum() > 0  # solver moved off zero
    assert arrays["normr"].data[0] > 0


def test_md_accumulates_forces_and_potential():
    arrays = run_with_arrays("c_md")
    assert np.abs(arrays["f"].data).sum() > 0
    assert arrays["pot"].data[0] > 0


@pytest.mark.parametrize("size", [10, 20])
def test_amg_relaxation_converges_toward_rhs(size):
    arrays = run_with_arrays(f"amg2013_{size}", sweeps=6)
    u, f = arrays["amg.u"].data, arrays["amg.f"].data
    # Weighted Jacobi toward f=1: the error shrinks monotonically with
    # sweeps; after 6 sweeps it is below (0.8)^6.
    assert np.abs(u - f).max() < 0.8**6 + 1e-9


def test_amg_footprint_scales_cubically():
    bytes_by_size = {}
    for size in (10, 20):
        w = REGISTRY.get(f"amg2013_{size}")
        rt = OpenMPRuntime(RunConfig(nthreads=2))
        box = {}

        def program(m, _w=w, _box=box):
            _w.run_program(m, sweeps=2)
            _box["bytes"] = m.runtime.space.app_bytes

        rt.run(program)
        bytes_by_size[size] = box["bytes"]
    assert bytes_by_size[20] == pytest.approx(8 * bytes_by_size[10], rel=0.05)


def test_lulesh_steps_scale_region_count():
    w = REGISTRY.get("lulesh")
    counts = {}
    for steps in (3, 6):
        tool = RecordingTool()
        rt = OpenMPRuntime(RunConfig(nthreads=2), tool=tool)
        rt.run(lambda m: w.run_program(m, steps=steps))
        counts[steps] = sum(1 for e in tool.tape if e.kind == "parallel_begin")
    # 8 kernels (regions) per time step.
    assert counts[6] == 2 * counts[3]
    assert counts[3] == 3 * 8
