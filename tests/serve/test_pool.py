"""Work-stealing pool mechanics and the shared retry policy."""

import threading

import pytest

from repro.common.errors import TraceFormatError
from repro.serve import PoolClosedError, RetryPolicy, ShardTask, WorkStealingPool


class RecordingPool(WorkStealingPool):
    """Executes a stub instead of a real shard (unit-test seam)."""

    def __init__(self, *args, behavior=None, **kwargs):
        super().__init__(*args, use_processes=False, **kwargs)
        self.behavior = behavior or (lambda spec: spec)
        self.ran = []
        self._ran_lock = threading.Lock()

    def _execute(self, spec):
        out = self.behavior(spec)
        with self._ran_lock:
            self.ran.append(spec)
        return out


def collect_outcomes(n):
    results = []
    done = threading.Event()
    lock = threading.Lock()

    def on_done(outcome, error):
        with lock:
            results.append((outcome, error))
            if len(results) >= n:
                done.set()

    return results, done, on_done


def test_pool_executes_all_tasks():
    pool = RecordingPool(2).start()
    results, done, on_done = collect_outcomes(8)
    for i in range(8):
        pool.submit(ShardTask(spec=i, on_done=on_done))
    assert done.wait(timeout=5.0)
    pool.close()
    assert sorted(r[0] for r in results) == list(range(8))
    assert pool.executed == 8


def test_steal_from_longest_deque():
    # One slow worker hogs its own deque; the idle worker must steal.
    release = threading.Event()

    def behavior(spec):
        if spec == "slow":
            release.wait(timeout=5.0)
        return spec

    pool = RecordingPool(2, behavior=behavior)
    results, done, on_done = collect_outcomes(5)
    # Load worker 0's deque before threads start: round-robin would
    # deal evenly, so append directly to force the imbalance.
    pool._deques[0].append(ShardTask(spec="slow", on_done=on_done))
    for i in range(4):
        pool._deques[0].append(ShardTask(spec=i, on_done=on_done))
    pool.start()
    release.set()
    assert done.wait(timeout=5.0)
    pool.close()
    assert pool.steals > 0


def test_cancelled_tasks_are_skipped():
    pool = RecordingPool(1)
    results, done, on_done = collect_outcomes(3)
    for i in range(3):
        pool.submit(
            ShardTask(spec=i, on_done=on_done, cancelled=lambda: True)
        )
    pool.start()
    assert done.wait(timeout=5.0)
    pool.close()
    assert all(outcome is None and error is None for outcome, error in results)
    assert pool.executed == 0
    assert pool.skipped == 3


def test_transient_errors_retry_then_succeed():
    attempts = []

    def behavior(spec):
        attempts.append(spec)
        if len(attempts) < 3:
            raise OSError("nfs blip")
        return "ok"

    pool = RecordingPool(
        1,
        behavior=behavior,
        retry=RetryPolicy(retries=3, backoff_seconds=0.0),
    ).start()
    results, done, on_done = collect_outcomes(1)
    pool.submit(ShardTask(spec="s", on_done=on_done))
    assert done.wait(timeout=5.0)
    pool.close()
    assert results[0] == ("ok", None)
    assert pool.retries == 2


def test_exhausted_retries_report_error_and_pool_survives():
    def behavior(spec):
        if spec == "bad":
            raise TraceFormatError("torn")
        return spec

    pool = RecordingPool(
        1, behavior=behavior, retry=RetryPolicy(retries=1, backoff_seconds=0.0)
    ).start()
    results, done, on_done = collect_outcomes(2)
    pool.submit(ShardTask(spec="bad", on_done=on_done))
    pool.submit(ShardTask(spec="fine", on_done=on_done))
    assert done.wait(timeout=5.0)
    pool.close()
    by_val = {str(o): e for o, e in results}
    assert isinstance(by_val["None"], TraceFormatError)
    assert by_val["fine"] is None  # the pool thread survived the failure


def test_nonretryable_error_propagates_to_callback_immediately():
    calls = []

    def behavior(spec):
        calls.append(spec)
        raise ValueError("logic bug")

    pool = RecordingPool(
        1, behavior=behavior, retry=RetryPolicy(retries=5, backoff_seconds=0.0)
    ).start()
    results, done, on_done = collect_outcomes(1)
    pool.submit(ShardTask(spec="s", on_done=on_done))
    assert done.wait(timeout=5.0)
    pool.close()
    assert isinstance(results[0][1], ValueError)
    assert len(calls) == 1  # no retries for non-transient errors


def test_retry_policy_backoff_sequence():
    sleeps = []
    fails = [0]

    def fn():
        fails[0] += 1
        if fails[0] <= 3:
            raise OSError("x")
        return "done"

    policy = RetryPolicy(retries=3, backoff_seconds=0.01, sleep=sleeps.append)
    assert policy.run(fn) == "done"
    assert sleeps == [0.01, 0.02, 0.04]  # doubling backoff


def test_retry_policy_fallback():
    policy = RetryPolicy(retries=1, backoff_seconds=0.0)

    def always_fails():
        raise OSError("x")

    assert policy.run(always_fails, fallback=None) is None
    with pytest.raises(OSError):
        policy.run(always_fails)


def test_close_without_wait_cancels_queued_tasks():
    # One blocker holds the single worker; everything behind it must be
    # failed with PoolClosedError instead of stranding its job forever.
    gate = threading.Event()
    started = threading.Event()

    def behavior(spec):
        if spec == "blocker":
            started.set()
            gate.wait(timeout=10.0)
        return spec

    pool = RecordingPool(1, behavior=behavior).start()
    results, done, on_done = collect_outcomes(4)
    pool.submit(ShardTask(spec="blocker", on_done=on_done))
    for i in range(3):
        pool.submit(ShardTask(spec=i, on_done=on_done))
    # Let the worker pick the blocker up before we pull the plug.
    assert started.wait(timeout=5.0)
    pool.close(wait=False)
    gate.set()
    assert done.wait(timeout=5.0)
    errors = [e for _, e in results if e is not None]
    assert len(errors) >= 3
    assert all(isinstance(e, PoolClosedError) for e in errors)


def test_retry_backoff_jitter_is_seeded_and_bounded():
    base = RetryPolicy(retries=4, backoff_seconds=0.01)
    a = RetryPolicy(retries=4, backoff_seconds=0.01, jitter_seed=7)
    b = RetryPolicy(retries=4, backoff_seconds=0.01, jitter_seed=7)
    seq_a = [a.backoff(k) for k in range(1, 5)]
    seq_b = [b.backoff(k) for k in range(1, 5)]
    assert seq_a == seq_b  # same seed -> identical schedule
    for attempt, value in enumerate(seq_a, start=1):
        # Full jitter: uniform over [0, deterministic doubling value].
        assert 0.0 <= value <= base.backoff(attempt)
    # Unseeded policies keep the exact doubling the tests above pin.
    assert [base.backoff(k) for k in range(1, 4)] == [0.01, 0.02, 0.04]


def test_retry_run_reports_backoff_to_hook():
    observed = []
    fails = [0]

    def fn():
        fails[0] += 1
        if fails[0] <= 2:
            raise OSError("x")
        return "done"

    policy = RetryPolicy(
        retries=3, backoff_seconds=0.01, jitter_seed=3, sleep=lambda s: None
    )
    assert policy.run(fn, on_backoff=observed.append) == "done"
    assert len(observed) == 2
    assert all(0.0 <= s <= 0.01 * (1 << k) for k, s in enumerate(observed))
