"""Service-level behavior: parity, cache reuse, crashes, cancellation."""

import threading
import time

import pytest

import repro.api as api
from repro.common.config import RunConfig, SwordConfig
from repro.faults import FaultySinkFactory, SinkFaultSpec
from repro.faults.harness import collect_trace
from repro.omp import OpenMPRuntime
from repro.serve import (
    DEGRADED,
    DONE,
    FAILED,
    JobFailedError,
    JobNotFoundError,
    ServeConfig,
    Service,
    TenantQuota,
)
from repro.sword import SwordTool
from repro.workloads import REGISTRY


@pytest.fixture(scope="module")
def racy_trace(tmp_path_factory):
    trace = tmp_path_factory.mktemp("traces") / "racy"
    collect_trace("plusplus-orig-yes", trace, nthreads=4, seed=0)
    return trace


@pytest.fixture(scope="module")
def clean_trace(tmp_path_factory):
    trace = tmp_path_factory.mktemp("traces") / "clean"
    collect_trace("atomic-orig-no", trace, nthreads=2, seed=0)
    return trace


@pytest.fixture(scope="module")
def torn_trace(tmp_path_factory):
    trace = tmp_path_factory.mktemp("traces") / "torn"
    collect_trace("antidep1-orig-yes", trace, nthreads=2, seed=0)
    log = sorted(trace.glob("thread_*.log"))[0]
    data = log.read_bytes()
    log.write_bytes(data[: len(data) // 2])
    return trace


def thread_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("shard_pairs", 4)
    return Service(ServeConfig(**kwargs))


def test_results_byte_identical_to_single_shot(racy_trace):
    baseline = api.analyze(racy_trace)
    with thread_service() as svc:
        job_id = svc.submit(racy_trace)
        result = svc.result(job_id, timeout=30)
    assert result.races.to_json() == baseline.races.to_json()
    assert result.stats.concurrent_pairs == baseline.stats.concurrent_pairs


def test_clean_trace_completes_with_no_races(clean_trace):
    with thread_service() as svc:
        job_id = svc.submit(clean_trace)
        result = svc.result(job_id, timeout=30)
        status = svc.status(job_id)
    assert len(result.races) == 0
    assert status["state"] == DONE
    assert status["ttfr_seconds"] is None  # TTFR only exists for racy jobs


def test_cross_job_cache_hits_on_resubmission(racy_trace):
    with thread_service() as svc:
        first = svc.submit(racy_trace, tenant="acme")
        svc.result(first, timeout=30)
        second = svc.submit(racy_trace, tenant="globex")
        svc.result(second, timeout=30)
        assert svc.status(second)["cache_hits"] > 0
        # Both tenants converged on identical races.
        assert (
            svc._job(first).races.to_json() == svc._job(second).races.to_json()
        )


def test_salvage_job_carries_integrity_report(torn_trace):
    baseline = api.analyze(torn_trace, integrity="salvage")
    with thread_service() as svc:
        job_id = svc.submit(torn_trace, integrity="salvage")
        result = svc.result(job_id, timeout=30)
    assert result.integrity is not None
    assert result.integrity.mode == "salvage"
    assert result.races.to_json() == baseline.races.to_json()


def test_strict_torn_trace_fails_job_not_service(torn_trace, racy_trace):
    with thread_service() as svc:
        bad = svc.submit(torn_trace, integrity="strict")
        with pytest.raises(JobFailedError):
            svc.result(bad, timeout=30)
        assert svc.status(bad)["state"] == FAILED
        assert svc.status(bad)["error"]
        # The service keeps serving after a failed job.
        good = svc.submit(racy_trace)
        assert len(svc.result(good, timeout=30).races) == 2


def test_worker_crash_mid_shard_via_faulty_sink(tmp_path, racy_trace):
    # A trace collected through a permanently failing sink is torn on
    # disk mid-write -- the serve-side worker then crashes mid-shard in
    # strict mode.  The job must fail cleanly and the pool survive.
    trace = tmp_path / "crashy"
    factory = FaultySinkFactory(SinkFaultSpec(fail_at=5, permanent=True))
    tool = SwordTool(
        SwordConfig(
            log_dir=str(trace),
            buffer_events=16,
            flush_degraded="drop-oldest",
        ),
        sink_factory=factory,
    )
    workload = REGISTRY.get("plusplus-orig-yes")
    OpenMPRuntime(RunConfig(nthreads=4), tool=tool).run(
        lambda master: workload.run_program(master)
    )
    assert factory.failures > 0
    with thread_service() as svc:
        job_id = svc.submit(trace, integrity="strict")
        status = None
        try:
            svc.result(job_id, timeout=30)
            status = svc.status(job_id)["state"]
        except JobFailedError:
            status = FAILED
        # Degradation policy may have produced a readable (shrunk) trace;
        # it analyzes, fails as a job, or quarantines the poison shards
        # and finishes degraded -- never hangs or kills the service.
        assert status in (DONE, FAILED, DEGRADED)
        follow_up = svc.submit(racy_trace)
        assert len(svc.result(follow_up, timeout=30).races) == 2


def test_cancel_while_running(racy_trace):
    with thread_service(workers=1, shard_pairs=1) as svc:
        # Gate the single worker so the job's shards sit queued long
        # enough to cancel deterministically.
        gate = threading.Event()
        original_execute = svc.pool._execute

        def gated_execute(spec):
            gate.wait(timeout=10.0)
            return original_execute(spec)

        svc.pool._execute = gated_execute
        job_id = svc.submit(racy_trace)
        time.sleep(0.05)  # let the scheduler fan the shards out
        assert svc.cancel(job_id) is True
        gate.set()
        with pytest.raises(JobFailedError) as exc:
            svc.result(job_id, timeout=30)
        assert exc.value.state == "cancelled"
        assert svc.cancel(job_id) is False  # already terminal


def test_quota_released_after_completion(racy_trace):
    with thread_service(quota=TenantQuota(max_pending=1)) as svc:
        first = svc.submit(racy_trace, tenant="acme")
        svc.result(first, timeout=30)
        # Quota returned at terminal state: a second submit succeeds.
        second = svc.submit(racy_trace, tenant="acme")
        svc.result(second, timeout=30)


def test_unknown_job_raises():
    with thread_service() as svc:
        with pytest.raises(JobNotFoundError):
            svc.status("job-999999")


def test_service_stats_shape(racy_trace):
    with thread_service() as svc:
        job_id = svc.submit(racy_trace)
        svc.result(job_id, timeout=30)
        stats = svc.stats()
    assert stats["jobs_finished"] == 1
    assert stats["jobs_per_second"] > 0
    assert stats["shards_executed"] > 0
    assert stats["ttfr_p99_seconds"] is not None


def test_api_exports_service():
    assert api.Service is Service
    assert api.ServeConfig is ServeConfig
