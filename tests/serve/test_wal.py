"""The job write-ahead log: append/replay roundtrip and torn tails."""

import json

import pytest

from repro.serve import JobWal, replay_wal
from repro.serve.wal import NULL_WAL, WAL_VERSION, WalReplay
from repro.sword.traceformat import parse_journal


def write_lifecycle(wal, job="job-000001", shards=2):
    wal.append(
        "submitted",
        job,
        tenant="acme",
        trace="/tmp/trace",
        integrity="strict",
        trace_id="t1",
    )
    wal.append(
        "planned",
        job,
        shards=shards,
        pairs=8,
        tokens=[f"tok{i}" for i in range(shards)],
    )
    for i in range(shards):
        wal.append("shard-done", job, shard=i, token=f"tok{i}", races=1, pairs=4)
    wal.append("merged", job, races=2)
    wal.append("finalized", job, state="done", races=2)


def test_append_replay_roundtrip(tmp_path):
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        write_lifecycle(wal)
        assert wal.appended == 6
    replay = replay_wal(path)
    assert replay.records == 6
    assert replay.orphaned == 0
    job = replay.jobs["job-000001"]
    assert job.tenant == "acme"
    assert job.trace_path == "/tmp/trace"
    assert job.shards_total == 2
    assert job.pairs_total == 8
    assert job.tokens == ["tok0", "tok1"]
    assert job.shards_done == {0: "tok0", 1: "tok1"}
    assert job.merged is True
    assert job.final_state == "done"
    assert job.finished
    assert replay.unfinished == []


def test_unfinished_jobs_in_submission_order(tmp_path):
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        write_lifecycle(wal, job="job-000001")  # finished
        wal.append("submitted", "job-000002", tenant="b", trace="x")
        wal.append("submitted", "job-000003", tenant="c", trace="y")
        wal.append("planned", "job-000003", shards=1, pairs=2, tokens=["t"])
    replay = replay_wal(path)
    assert [j.job_id for j in replay.unfinished] == ["job-000002", "job-000003"]
    assert replay.max_seq() == 3


def test_torn_tail_line_is_dropped_not_fatal(tmp_path):
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        write_lifecycle(wal)
        wal.append("submitted", "job-000002", tenant="b", trace="x")
    data = path.read_bytes()
    # Cut the last record mid-line: the torn tail a mid-append kill leaves.
    last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
    torn = data[: last_line_start + (len(data) - last_line_start) // 2]
    path.write_bytes(torn)
    replay = replay_wal(path)
    # The unacknowledged submission vanished; the finished job survived.
    assert "job-000002" not in replay.jobs
    assert replay.jobs["job-000001"].finished


def test_corrupt_crc_line_is_dropped(tmp_path):
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        write_lifecycle(wal)
    lines = path.read_text().splitlines(keepends=True)
    # Flip a payload byte in the "merged" record; its CRC no longer matches.
    bad = lines[4].replace(b"merged".decode(), "mergeX", 1)
    path.write_text("".join(lines[:4] + [bad] + lines[5:]))
    replay = replay_wal(path)
    job = replay.jobs["job-000001"]
    assert job.merged is False  # the damaged record was dropped
    assert job.final_state == "done"  # later records still parse


def test_orphaned_records_counted_not_fatal(tmp_path):
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        write_lifecycle(wal)
    lines = path.read_text().splitlines(keepends=True)
    # Simulate a log whose head was truncated away: drop "submitted".
    path.write_text("".join(lines[1:]))
    replay = replay_wal(path)
    assert replay.jobs == {}
    assert replay.orphaned == 5


def test_future_version_records_skipped(tmp_path):
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        wal.append("submitted", "job-000001", tenant="a", trace="x")
    from repro.sword.traceformat import journal_line

    future = journal_line(
        {
            "v": WAL_VERSION + 1,
            "ts": 0.0,
            "kind": "finalized",
            "job": "job-000001",
            "state": "done",
        }
    )
    with open(path, "a") as fh:
        fh.write(future)
    replay = replay_wal(path)
    # A downgraded service must not misread records it cannot understand.
    assert not replay.jobs["job-000001"].finished


def test_null_wal_is_disabled_noop():
    assert NULL_WAL.enabled is False
    assert NULL_WAL.append("submitted", "job-000001") == {}
    assert NULL_WAL.appended == 0


def test_real_wal_rejects_unknown_kind(tmp_path):
    with JobWal(tmp_path / "wal.jsonl") as wal:
        with pytest.raises(ValueError):
            wal.append("exploded", "job-000001")


def test_none_fields_are_omitted(tmp_path):
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        wal.append(
            "submitted", "job-000001", tenant="a", trace="x", deadline_s=None
        )
    record = parse_journal(path.read_text(), salvage=True)[0]
    assert "deadline_s" not in record


def test_missing_file_replays_empty(tmp_path):
    replay = replay_wal(tmp_path / "never-written.jsonl")
    assert isinstance(replay, WalReplay)
    assert replay.jobs == {}
    assert replay.records == 0


def test_max_seq_ignores_foreign_ids(tmp_path):
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        wal.append("submitted", "job-000007", tenant="a", trace="x")
        wal.append("submitted", "imported-job", tenant="a", trace="y")
    assert replay_wal(path).max_seq() == 7


def test_records_match_checked_in_schema(tmp_path):
    from pathlib import Path as _P

    from repro.obs.schema import validate

    schema_path = (
        _P(__file__).resolve().parents[2] / "schemas" / "wal-record.schema.json"
    )
    path = tmp_path / "wal.jsonl"
    with JobWal(path) as wal:
        write_lifecycle(wal)
    records = parse_journal(path.read_text(), salvage=True)
    errors = validate(records, json.loads(schema_path.read_text()))
    assert errors == []
