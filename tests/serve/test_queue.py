"""Ingestion-queue admission control: quotas, backpressure, lifecycle."""

import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    BackpressureError,
    IngestionQueue,
    JobRecord,
    QuotaExceededError,
    ServeConfig,
    ServiceClosedError,
    TenantQuota,
    TriageInfo,
)


def make_job(job_id="j1", tenant="acme", log_bytes=100):
    return JobRecord(
        job_id=job_id,
        tenant=tenant,
        trace_path=Path("/nonexistent"),
        integrity="strict",
        triage=TriageInfo(log_bytes=log_bytes, threads=2, meta_rows=4),
    )


def make_queue(**kwargs):
    return IngestionQueue(ServeConfig(**kwargs))


def test_fifo_order():
    q = make_queue()
    for i in range(3):
        q.submit(make_job(job_id=f"j{i}"))
    assert [q.get(timeout=0.1).job_id for _ in range(3)] == ["j0", "j1", "j2"]


def test_quota_exhaustion_counts_running_jobs():
    q = make_queue(quota=TenantQuota(max_pending=2))
    a, b = make_job("a"), make_job("b")
    q.submit(a)
    q.submit(b)
    with pytest.raises(QuotaExceededError) as exc:
        q.submit(make_job("c"))
    assert "acme" in str(exc.value)
    # Popping does NOT return quota -- the job is merely running.
    assert q.get(timeout=0.1) is a
    with pytest.raises(QuotaExceededError):
        q.submit(make_job("c"))
    # Terminal release does.
    q.release(a)
    q.submit(make_job("c"))
    assert q.pending("acme") == 2


def test_quota_is_per_tenant():
    q = make_queue(quota=TenantQuota(max_pending=1))
    q.submit(make_job("a", tenant="acme"))
    with pytest.raises(QuotaExceededError):
        q.submit(make_job("b", tenant="acme"))
    q.submit(make_job("c", tenant="globex"))  # unaffected


def test_byte_quota():
    q = make_queue(
        quota=TenantQuota(max_pending=10, max_pending_bytes=250)
    )
    q.submit(make_job("a", log_bytes=100))
    q.submit(make_job("b", log_bytes=100))
    with pytest.raises(QuotaExceededError) as exc:
        q.submit(make_job("c", log_bytes=100))
    assert "max_pending_bytes" in str(exc.value)


def test_backpressure_rejects_when_full():
    q = make_queue(queue_capacity=2, quota=TenantQuota(max_pending=99))
    q.submit(make_job("a"))
    q.submit(make_job("b"))
    with pytest.raises(BackpressureError) as exc:
        q.submit(make_job("c"))
    assert exc.value and q.depth == 2


def test_backpressure_block_waits_for_slot():
    q = make_queue(queue_capacity=1, quota=TenantQuota(max_pending=99))
    q.submit(make_job("a"))
    admitted = threading.Event()

    def producer():
        q.submit(make_job("b"), block=True, timeout=5.0)
        admitted.set()

    t = threading.Thread(target=producer)
    t.start()
    time.sleep(0.05)
    assert not admitted.is_set()  # still blocked on the full queue
    q.get(timeout=0.1)  # drain one -> slot frees -> producer admitted
    t.join(timeout=5.0)
    assert admitted.is_set()
    assert q.depth == 1


def test_backpressure_block_times_out():
    q = make_queue(queue_capacity=1, quota=TenantQuota(max_pending=99))
    q.submit(make_job("a"))
    with pytest.raises(BackpressureError):
        q.submit(make_job("b"), block=True, timeout=0.05)


def test_quota_checked_before_capacity():
    # An over-quota tenant is rejected by quota even when the queue is
    # also full -- it must not burn a blocking wait on a slot it could
    # never use.
    q = make_queue(queue_capacity=1, quota=TenantQuota(max_pending=1))
    q.submit(make_job("a"))
    with pytest.raises(QuotaExceededError):
        q.submit(make_job("b"), block=True, timeout=5.0)


def test_closed_queue_rejects_and_drains():
    q = make_queue()
    q.submit(make_job("a"))
    q.close()
    with pytest.raises(ServiceClosedError):
        q.submit(make_job("b"))
    assert q.get(timeout=0.1).job_id == "a"  # already-admitted work drains
    assert q.get(timeout=0.1) is None


def test_queue_depth_metric():
    from repro.obs import live

    obs = live()
    q = IngestionQueue(ServeConfig(), obs=obs)
    q.submit(make_job("a"))
    snap = obs.registry.snapshot()
    assert snap["gauges"]["serve.queue_depth"]["value"] == 1
    assert snap["counters"]["serve.jobs_admitted"] == 1
