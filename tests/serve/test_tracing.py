"""End-to-end job tracing: context, worker bundles, trace stitching."""

import json
import pickle

import pytest

from repro.faults.harness import collect_trace
from repro.obs import NULL_OBS, NullTracer, get_obs, live, prometheus_text
from repro.serve import (
    FAILED,
    JobFailedError,
    ObsConfig,
    ServeConfig,
    Service,
    TraceContext,
)
from repro.serve.tracing import coord_span


@pytest.fixture(scope="module")
def racy_trace(tmp_path_factory):
    trace = tmp_path_factory.mktemp("traces") / "racy"
    collect_trace("plusplus-orig-yes", trace, nthreads=4, seed=0)
    return trace


@pytest.fixture(scope="module")
def torn_trace(tmp_path_factory):
    trace = tmp_path_factory.mktemp("traces") / "torn"
    collect_trace("antidep1-orig-yes", trace, nthreads=2, seed=0)
    log = sorted(trace.glob("thread_*.log"))[0]
    data = log.read_bytes()
    log.write_bytes(data[: len(data) // 2])
    return trace


def live_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("shard_pairs", 4)
    return Service(ServeConfig(**kwargs), obs=live())


def x_events(trace: dict) -> list[dict]:
    return [e for e in trace["traceEvents"] if e["ph"] == "X"]


def row_names(trace: dict) -> dict[int, str]:
    """tid -> row name from the thread_name metadata events."""
    return {
        e["tid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }


# -- the context and the recipe ----------------------------------------------------


def test_trace_context_mint_and_child():
    root = TraceContext.mint()
    assert len(root.trace_id) == 32
    assert len(root.span_id) == 16
    assert root.parent_id == ""
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id
    assert TraceContext.mint().trace_id != root.trace_id
    assert child.to_json()["parent_id"] == root.span_id


def test_obs_config_none_when_dark():
    assert ObsConfig.from_obs(NULL_OBS) is None


def test_obs_config_round_trips_through_pickle():
    config = ObsConfig.from_obs(live())
    assert config is not None
    assert config.metrics and config.tracing
    clone = pickle.loads(pickle.dumps(config))
    assert clone == config


def test_obs_config_builds_live_bundle_with_null_journal():
    bundle = ObsConfig.from_obs(live()).build()
    assert bundle.registry.enabled
    assert not isinstance(bundle.tracer, NullTracer)
    assert not bundle.journal.enabled  # the coordinator journals lifecycle


def test_coord_span_clamps_and_elides():
    span = coord_span("plan", 10.0, 9.0, shards=3, error=None)
    assert span["dur"] == 0.0  # never negative
    assert span["args"] == {"shards": 3}  # None values elided
    assert "args" not in coord_span("merge", 1.0, 2.0, note=None)


# -- the stitched trace ------------------------------------------------------------


def test_process_pool_job_stitches_one_trace(racy_trace):
    with live_service(use_processes=True) as svc:
        job_id = svc.submit(racy_trace, tenant="acme")
        svc.result(job_id, timeout=60)
        status = svc.status(job_id)
        stitched = svc.trace(job_id)

    # Well-formed Chrome trace-event JSON (and json-serialisable).
    json.dumps(stitched)
    assert stitched["metadata"]["job_id"] == job_id
    assert stitched["metadata"]["tenant"] == "acme"
    assert stitched["metadata"]["state"] == "done"
    assert stitched["metadata"]["trace_id"] == status["trace_id"] != ""

    rows = row_names(stitched)
    assert rows[0] == "coordinator"
    worker_tids = [tid for tid, name in rows.items() if name.startswith("worker pid ")]
    assert worker_tids  # at least one process-worker row

    events = x_events(stitched)
    assert events and all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
    # Every span carries the job's trace id.
    assert all(e["args"]["trace_id"] == status["trace_id"] for e in events)

    coord = [e for e in events if e["tid"] == 0]
    coord_names = {e["name"] for e in coord}
    assert {"job", "triage", "queue-wait", "plan", "merge"} <= coord_names

    # The enclosing "job" bar contains the control-plane spans that start
    # at or after submission (triage runs just before the clock starts).
    job_bar = next(e for e in coord if e["name"] == "job")
    job_end = job_bar["ts"] + job_bar["dur"]
    for event in coord:
        if event["name"] in ("queue-wait", "plan", "merge"):
            assert event["ts"] >= job_bar["ts"] - 1.0  # µs tolerance
            assert event["ts"] + event["dur"] <= job_end + 1.0

    # Worker rows: every scan nests inside a shard span on the same row.
    worker = [e for e in events if e["tid"] in worker_tids]
    shard_spans = [e for e in worker if e["name"] == "shard"]
    scans = [e for e in worker if e["name"] == "scan"]
    assert shard_spans and scans
    for scan in scans:
        assert any(
            s["tid"] == scan["tid"]
            and s["ts"] - 1.0 <= scan["ts"]
            and scan["ts"] + scan["dur"] <= s["ts"] + s["dur"] + 1.0
            for s in shard_spans
        )


def test_trace_id_stable_from_queue_to_merge(racy_trace):
    with live_service() as svc:
        job_id = svc.submit(racy_trace, tenant="acme")
        svc.result(job_id, timeout=30)
        trace_id = svc.status(job_id)["trace_id"]
        events = svc.obs.journal.events(job=job_id)
    kinds = [e["kind"] for e in events]
    # The lifecycle reads in order on the flight recorder...
    assert kinds.index("job-submit") < kinds.index("job-dequeue")
    assert kinds.index("job-dequeue") < kinds.index("shard-start")
    assert kinds.index("shard-start") < kinds.index("job-complete")
    # ...and every event that names a trace carries the same one.
    tagged = [e for e in events if "trace_id" in e]
    assert tagged and all(e["trace_id"] == trace_id for e in tagged)


def test_retry_attempts_become_retry_and_backoff_spans(racy_trace):
    with live_service(shard_backoff_seconds=0.001) as svc:
        flakes = [OSError("simulated trace I/O flake") for _ in range(2)]
        original = svc.pool._execute

        def flaky(spec):
            try:
                exc = flakes.pop()  # atomic under the GIL
            except IndexError:
                return original(spec)
            raise exc

        svc.pool._execute = flaky
        job_id = svc.submit(racy_trace)
        result = svc.result(job_id, timeout=30)
        stitched = svc.trace(job_id)
        retries = svc.obs.journal.events(kind="shard-retry")

    assert len(result.races) == 2  # the job still converged
    assert svc.pool.retries == 2
    assert len(retries) == 2
    names = [e["name"] for e in x_events(stitched)]
    assert names.count("shard-retry") == 2
    # A failed attempt followed by another attempt leaves a backoff gap.
    assert "shard-backoff" in names


def test_worker_metric_deltas_merge_into_job(racy_trace):
    with live_service() as svc:
        job_id = svc.submit(racy_trace)
        svc.result(job_id, timeout=30)
        job = svc._job(job_id)
    counters = job.worker_metrics.get("counters", {})
    assert counters.get("offline.events_read", 0) > 0


# -- per-tenant telemetry ----------------------------------------------------------


def test_per_tenant_histograms_with_exemplars(racy_trace):
    with live_service() as svc:
        for tenant in ("acme", "globex"):
            svc.result(svc.submit(racy_trace, tenant=tenant), timeout=30)
        snapshot = svc.obs.registry.snapshot()
        stats = svc.stats()

    histograms = snapshot["histograms"]
    for tenant in ("acme", "globex"):
        labeled = histograms[f'serve.ttfr_seconds{{tenant="{tenant}"}}']
        assert labeled["count"] == 1
        assert labeled["exemplars"]  # trace-id exemplar on some bucket
        assert f'serve.queue_wait_seconds{{tenant="{tenant}"}}' in histograms
        assert f'serve.shard_seconds{{tenant="{tenant}"}}' in histograms
    # The unlabeled aggregate still sees every observation.
    assert histograms["serve.ttfr_seconds"]["count"] == 2

    text = prometheus_text(snapshot)
    assert '# {trace_id="' in text
    assert 'repro_serve_ttfr_seconds_bucket{tenant="acme",le="' in text
    assert 'repro_serve_ttfr_seconds_p50{tenant="acme"}' in text
    assert 'repro_serve_ttfr_seconds_p99{tenant="globex"}' in text

    tenants = stats["tenants"]
    assert set(tenants) == {"acme", "globex"}
    for slo in tenants.values():
        assert slo["finished"] == slo["submitted"] == 1
        assert slo["ttfr_p50_seconds"] is not None
        assert slo["queue_wait_p50_seconds"] is not None
    assert stats["journal"]["recorded"] > 0


def test_stats_line_is_one_compact_line(racy_trace):
    with live_service() as svc:
        svc.result(svc.submit(racy_trace), timeout=30)
        line = svc.stats_line()
    assert line.startswith("[serve] jobs=1/1")
    assert "\n" not in line
    assert "ttfr_p50=" in line


# -- artifacts ---------------------------------------------------------------------


def test_trace_artifacts_written_per_job(tmp_path, racy_trace):
    trace_dir = tmp_path / "traces"
    with live_service(trace_dir=str(trace_dir)) as svc:
        job_id = svc.submit(racy_trace)
        svc.result(job_id, timeout=30)
    artifact = trace_dir / f"{job_id}.trace.json"
    assert artifact.exists()
    stitched = json.loads(artifact.read_text())
    assert stitched["metadata"]["job_id"] == job_id
    assert x_events(stitched)


def test_failed_job_dumps_its_journal_slice(tmp_path, torn_trace):
    trace_dir = tmp_path / "traces"
    with live_service(trace_dir=str(trace_dir)) as svc:
        job_id = svc.submit(torn_trace, integrity="strict")
        with pytest.raises(JobFailedError):
            svc.result(job_id, timeout=30)
        assert svc.status(job_id)["state"] == FAILED
    slice_path = trace_dir / f"{job_id}.journal.jsonl"
    assert slice_path.exists()
    events = [json.loads(line) for line in slice_path.read_text().splitlines()]
    assert events and all(e["job"] == job_id for e in events)
    assert {"job-submit", "job-complete"} <= {e["kind"] for e in events}


def test_dark_service_records_no_worker_spans(racy_trace):
    # NULL_OBS service: coordinator wall-clock spans still exist (they
    # are plain dicts, no tracer involved) but shards run dark -- no
    # worker rows, no journal, and stats() still answers.
    with Service(ServeConfig(workers=2, use_processes=False, shard_pairs=4)) as svc:
        job_id = svc.submit(racy_trace)
        svc.result(job_id, timeout=30)
        job = svc._job(job_id)
        stitched = svc.trace(job_id)
        stats = svc.stats()
    assert job.worker_spans == []
    assert job.worker_metrics == {}
    # Regression: thread-mode live services earlier in this module must
    # not have leaked their per-shard bundles into the process ambient.
    assert get_obs() is NULL_OBS
    assert all(not n.startswith("worker") for n in row_names(stitched).values())
    assert stats["journal"] == {}
    assert stats["tenants"]["default"]["finished"] == 1
