"""Durable recovery: WAL resume, checkpoints, degradation, deadlines."""

import threading
import time

import pytest

from repro.faults import sabotage
from repro.faults.harness import collect_trace
from repro.serve import (
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    RESULT_STATES,
    JobFailedError,
    ServeConfig,
    Service,
    TenantQuota,
    replay_wal,
)
from repro.serve.wal import WAL_NAME
from repro.sword.traceformat import parse_journal


@pytest.fixture(scope="module")
def racy_trace(tmp_path_factory):
    trace = tmp_path_factory.mktemp("traces") / "racy"
    collect_trace("plusplus-orig-yes", trace, nthreads=2, seed=0)
    return trace


def durable_service(state_dir, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("shard_pairs", 4)
    kwargs.setdefault("quota", TenantQuota(max_pending=8))
    return Service(ServeConfig(state_dir=str(state_dir), **kwargs))


def truncate_wal(state_dir, drop_kinds):
    """Drop raw WAL lines of the given kinds, byte-exact for the rest."""
    wal = state_dir / WAL_NAME
    kept = []
    for line in wal.read_text(encoding="utf-8").splitlines(keepends=True):
        records = parse_journal(line, salvage=True)
        if records and records[0].get("kind") in drop_kinds:
            continue
        kept.append(line)
    wal.write_text("".join(kept), encoding="utf-8")


def test_restart_resumes_job_from_checkpoints(tmp_path, racy_trace):
    state = tmp_path / "state"
    with durable_service(state) as svc:
        job_id = svc.submit(racy_trace)
        reference = svc.result(job_id, timeout=60).races.to_json()
    # Simulate a kill after every shard checkpointed but before the
    # merge was acknowledged: drop the merged/finalized records.
    truncate_wal(state, {"merged", "finalized"})
    durable = len(replay_wal(state / WAL_NAME).jobs[job_id].shards_done)
    assert durable > 0
    with durable_service(state) as svc:
        result = svc.result(job_id, timeout=60)  # same pre-crash id works
        status = svc.status(job_id)
        stats = svc.stats()
        # The id sequence continues past the replayed maximum.
        fresh = svc.submit(racy_trace)
        svc.result(fresh, timeout=60)
    assert result.races.to_json() == reference  # byte-identical completion
    assert status["resumed"] is True
    assert status["state"] == DONE
    # Every shard the WAL proved durable was loaded, never re-executed.
    assert status["checkpoint_hits"] >= durable
    assert stats["jobs_resumed"] == 1
    assert fresh != job_id


def test_restart_with_no_planned_record_replans_from_scratch(
    tmp_path, racy_trace
):
    state = tmp_path / "state"
    with durable_service(state) as svc:
        job_id = svc.submit(racy_trace)
        reference = svc.result(job_id, timeout=60).races.to_json()
    # Kill straight after admission: only the submitted record survives.
    truncate_wal(state, {"planned", "shard-done", "merged", "finalized"})
    for ckpt in (state / "checkpoints").glob("*.json"):
        ckpt.unlink()
    with durable_service(state) as svc:
        result = svc.result(job_id, timeout=60)
    assert result.races.to_json() == reference


def test_degraded_job_returns_partial_result(tmp_path, racy_trace):
    state = tmp_path / "state"
    artifacts = tmp_path / "artifacts"
    with durable_service(state) as svc:
        clean = svc.result(svc.submit(racy_trace), timeout=60).races.to_json()
    with durable_service(
        tmp_path / "state2", trace_dir=str(artifacts)
    ) as svc:
        sabotage(svc, poison=(1,))
        job_id = svc.submit(racy_trace)
        result = svc.result(job_id, timeout=60)  # DEGRADED still returns
        status = svc.status(job_id)
        assert svc.stats()["jobs_degraded"] == 1
    assert status["state"] == DEGRADED
    assert status["state"] in RESULT_STATES
    assert status["shards_quarantined"] == 1
    report = status["degradation"]
    assert report["shards_quarantined"] == [1]
    assert 0.0 < report["pair_coverage"] < 1.0
    assert report["quarantined"][0]["causes"]  # the cause chain survives
    # Partial coverage yields a subset of the full answer.
    degraded = result.races.to_json()
    assert set(map(str, degraded)) <= set(map(str, clean))
    # The structured report landed as an artifact next to the job trace.
    assert (artifacts / f"{job_id}.degradation.json").exists()
    # And the WAL's terminal record agrees.
    replay = replay_wal(tmp_path / "state2" / WAL_NAME)
    assert replay.jobs[job_id].final_state == DEGRADED


def test_all_shards_quarantined_fails_job(tmp_path, racy_trace):
    with durable_service(tmp_path / "state") as svc:
        sabotage(svc, poison=(0, 1, 2, 3, 4, 5, 6, 7))
        job_id = svc.submit(racy_trace)
        with pytest.raises(JobFailedError) as exc:
            svc.result(job_id, timeout=60)
        assert exc.value.state == FAILED
        assert "chaos" in svc.status(job_id)["error"]


def test_quarantine_disabled_fails_job_directly(tmp_path, racy_trace):
    with durable_service(tmp_path / "state", quarantine=False) as svc:
        sabotage(svc, poison=(1,))
        job_id = svc.submit(racy_trace)
        with pytest.raises(JobFailedError):
            svc.result(job_id, timeout=60)
        assert svc.status(job_id)["state"] == FAILED


def test_job_deadline_fails_job_not_service(tmp_path, racy_trace):
    quota = TenantQuota(max_pending=8, deadline_s=0.05)
    with durable_service(tmp_path / "state", quota=quota) as svc:
        gate = threading.Event()
        original = svc.pool._execute

        def slow(spec):
            gate.wait(timeout=10.0)
            return original(spec)

        svc.pool._execute = slow
        job_id = svc.submit(racy_trace)
        time.sleep(0.1)  # blow the deadline while shards sit gated
        gate.set()
        with pytest.raises(JobFailedError):
            svc.result(job_id, timeout=60)
        status = svc.status(job_id)
        assert status["state"] == FAILED
        assert "deadline" in status["error"].lower()
        # The service keeps serving afterwards.
        svc.pool._execute = original
        follow_up = svc.submit(racy_trace, tenant="other")
        svc.result(follow_up, timeout=60)


def test_cancel_racing_finalization_cancel_wins(tmp_path, racy_trace):
    # Interpose at the exact boundary: the final shard has executed and
    # its outcome is in hand, but the terminal state is not yet chosen.
    # A cancel landing there must win (the caller walked away) and the
    # WAL must agree.  One worker serializes the shard callbacks.
    with durable_service(tmp_path / "state", workers=1) as svc:
        original = svc.scheduler._on_shard
        cancelled_at_boundary = []
        box = {}

        def racing(job, outcome, error, task=None):
            if (
                job.job_id == box.get("job_id")
                and not cancelled_at_boundary
                and job.shards_done == job.shards_total - 1
            ):
                cancelled_at_boundary.append(svc.cancel(job.job_id))
            original(job, outcome, error, task)

        svc.scheduler._on_shard = racing
        box["job_id"] = svc.submit(racy_trace)
        with pytest.raises(JobFailedError) as exc:
            svc.result(box["job_id"], timeout=60)
        assert cancelled_at_boundary == [True]  # the job was still active
        assert exc.value.state == CANCELLED
        status = svc.status(box["job_id"])
        assert status["state"] == CANCELLED
        assert svc.cancel(box["job_id"]) is False  # terminal is terminal
    replay = replay_wal(tmp_path / "state" / WAL_NAME)
    assert replay.jobs[box["job_id"]].final_state == CANCELLED


def test_cancel_after_finalization_is_a_stable_no(tmp_path, racy_trace):
    state = tmp_path / "state"
    with durable_service(state) as svc:
        job_id = svc.submit(racy_trace)
        svc.result(job_id, timeout=60)
        before = svc.status(job_id)["state"]
        assert svc.cancel(job_id) is False
        assert svc.status(job_id)["state"] == before
    assert replay_wal(state / WAL_NAME).jobs[job_id].final_state == before


def test_identical_jobs_share_checkpoints(tmp_path, racy_trace):
    # Checkpoint tokens hash trace content + shard shape, not job ids:
    # the second identical submission is served from checkpoints.
    with durable_service(tmp_path / "state") as svc:
        first = svc.submit(racy_trace)
        svc.result(first, timeout=60)
        second = svc.submit(racy_trace)
        svc.result(second, timeout=60)
        status = svc.status(second)
        assert status["checkpoint_hits"] > 0
        assert (
            svc._job(first).races.to_json() == svc._job(second).races.to_json()
        )
