"""Watch mode must survive trace-directory trouble mid-run."""

from repro.common.errors import TraceFormatError
from repro.obs import live
from repro.stream.analyzer import StreamAnalyzer
from repro.stream.bus import TraceObserver
from repro.stream.watch import ResilientObserver, watch
from repro.workloads import REGISTRY


class FlakyObserver(TraceObserver):
    """Raises OSError for the first ``fail`` deliveries of each hook."""

    def __init__(self, fail=2):
        self.fail = fail
        self.calls = {}
        self.delivered = []
        self.engine = None  # reader-reset seam the wrapper pokes

    def _maybe_fail(self, name):
        n = self.calls.get(name, 0)
        self.calls[name] = n + 1
        if n < self.fail:
            raise OSError("trace directory vanished")
        self.delivered.append(name)

    def on_chunk(self, gid, row):
        self._maybe_fail("on_chunk")

    def on_region(self, pid, info):
        self._maybe_fail("on_region")


def test_resilient_observer_retries_with_backoff():
    obs = live()
    inner = FlakyObserver(fail=2)
    wrapper = ResilientObserver(inner, obs=obs, retries=3, backoff_seconds=0.01)
    sleeps = []
    wrapper._sleep = sleeps.append
    wrapper.on_chunk(0, None)
    assert inner.delivered == ["on_chunk"]
    assert wrapper.reconnects == 2
    assert sleeps == [0.01, 0.02]  # exponential backoff
    assert wrapper.dropped_notifications == 0
    assert obs.registry.snapshot()["counters"]["watch.reconnects"] == 2


def test_resilient_observer_drops_after_exhaustion():
    inner = FlakyObserver(fail=10)
    wrapper = ResilientObserver(inner, retries=2, backoff_seconds=0.0)
    wrapper.on_region(1, {})  # must not raise
    assert wrapper.reconnects == 2
    assert wrapper.dropped_notifications == 1
    assert inner.delivered == []


def test_resilient_observer_tolerates_trace_format_errors():
    class TornObserver(TraceObserver):
        engine = None

        def on_chunk(self, gid, row):
            raise TraceFormatError("half-rotated trace")

    wrapper = ResilientObserver(TornObserver(), retries=1, backoff_seconds=0.0)
    wrapper.on_chunk(0, None)
    assert wrapper.dropped_notifications == 1


def test_resilient_observer_resets_inner_readers_between_attempts():
    resets = []

    class Engine:
        def close(self):
            resets.append(True)

    inner = FlakyObserver(fail=1)
    inner.engine = Engine()
    wrapper = ResilientObserver(inner, retries=2, backoff_seconds=0.0)
    wrapper.on_chunk(0, None)
    assert resets  # stale handles were closed before the retry


def test_watch_survives_analyzer_io_failures(monkeypatch):
    """End to end through ``watch()``: the analyzer's first chunk
    deliveries blow up with OSError (vanished trace files); the watched
    application must still run to completion with the analysis merely
    degraded, and the reconnects must land on the metrics snapshot."""
    state = {"remaining": 2}
    original = StreamAnalyzer.on_chunk

    def flaky_on_chunk(self, gid, row):
        if state["remaining"] > 0:
            state["remaining"] -= 1
            raise OSError("trace file vanished")
        return original(self, gid, row)

    monkeypatch.setattr(StreamAnalyzer, "on_chunk", flaky_on_chunk)
    result = watch(
        REGISTRY.get("antidep1-orig-yes"),
        nthreads=2,
        seed=0,
        obs=live(),
    )
    assert not result.oom
    assert result.races is not None  # run and analysis both completed
    assert result.metrics["counters"]["watch.reconnects"] >= 2
