"""Incremental pair scheduler: sealing, cross-region pairs, plan parity."""

import shutil
import tempfile

import pytest

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.offline.intervals import IntervalInventory
from repro.omp import OpenMPRuntime
from repro.stream import IncrementalPairScheduler, StreamingAnalyzer, replay_trace
from repro.stream.checkpoint import pair_key
from repro.sword import SwordTool, TraceDir
from repro.sword.traceformat import MetaRow
from repro.workloads import REGISTRY

TOP_REGION = {"ppid": 0, "parent_slot": 0, "parent_bid": 0, "span": 3, "level": 0}


def row(pid, bid, slot, span=3, begin=0, size=24):
    return MetaRow(
        pid=pid, ppid=0, bid=bid, offset=slot, span=span, level=0,
        data_begin=begin, size=size,
    )


def complete(sched, gid, pid, bid, slot, span=3):
    sched.add_chunk(gid, row(pid, bid, slot, span=span))
    return sched.complete_interval(gid, pid, bid, slot, span)


def test_same_group_pairs_only_at_seal():
    sched = IncrementalPairScheduler()
    sched.add_region(1, TOP_REGION)
    assert complete(sched, 0, 1, 0, 0) == []
    assert complete(sched, 1, 1, 0, 1) == []
    pairs = complete(sched, 2, 1, 0, 2)
    keys = {pair_key(a.key, b.key) for a, b in pairs}
    assert keys == {
        ((0, 1, 0), (1, 1, 0)),
        ((0, 1, 0), (2, 1, 0)),
        ((1, 1, 0), (2, 1, 0)),
    }


def test_barrier_separated_groups_never_pair():
    sched = IncrementalPairScheduler()
    sched.add_region(1, TOP_REGION)
    for slot in range(3):
        complete(sched, slot, 1, 0, slot)
    pairs = []
    for slot in range(3):
        pairs += complete(sched, slot, 1, 1, slot)
    # Only the bid-1 in-group pairs: nothing across the barrier.
    assert all(a.key.bid == 1 and b.key.bid == 1 for a, b in pairs)
    assert len(pairs) == 3


def test_duplicate_completion_is_idempotent():
    sched = IncrementalPairScheduler()
    sched.add_region(1, TOP_REGION)
    complete(sched, 0, 1, 0, 0)
    assert sched.complete_interval(0, 1, 0, 0, 3) == []
    assert sched.unsealed_groups() == [(1, 0)]


def test_tasky_group_gets_self_pairs():
    sched = IncrementalPairScheduler(is_tasky=lambda pid, bid: True)
    sched.add_region(1, TOP_REGION)
    complete(sched, 0, 1, 0, 0)
    complete(sched, 1, 1, 0, 1)
    pairs = complete(sched, 2, 1, 0, 2)
    selfs = [(a, b) for a, b in pairs if a.key == b.key]
    cross = [(a, b) for a, b in pairs if a.key != b.key]
    assert len(selfs) == 3 and len(cross) == 3


def test_nested_cross_region_pair_ready_before_seal():
    """Sibling nested regions pair the moment both sides complete."""
    sched = IncrementalPairScheduler()
    sched.add_region(1, {"ppid": 0, "parent_slot": 0, "parent_bid": 0,
                         "span": 2, "level": 0})
    # Regions 2 and 3 forked by different teammates of region 1, bid 0.
    sched.add_region(2, {"ppid": 1, "parent_slot": 0, "parent_bid": 0,
                         "span": 2, "level": 1})
    sched.add_region(3, {"ppid": 1, "parent_slot": 1, "parent_bid": 0,
                         "span": 2, "level": 1})
    assert complete(sched, 10, 2, 0, 0, span=2) == []
    pairs = complete(sched, 20, 3, 0, 0, span=2)
    assert {pair_key(a.key, b.key) for a, b in pairs} == {
        ((10, 2, 0), (20, 3, 0))
    }


def test_serialised_sibling_regions_never_pair():
    """Two regions forked by the same thread position are sequential."""
    sched = IncrementalPairScheduler()
    sched.add_region(1, {"ppid": 0, "parent_slot": 0, "parent_bid": 0,
                         "span": 2, "level": 0})
    sched.add_region(2, {"ppid": 1, "parent_slot": 0, "parent_bid": 0,
                         "span": 2, "level": 1})
    sched.add_region(3, {"ppid": 1, "parent_slot": 0, "parent_bid": 0,
                         "span": 2, "level": 1})
    complete(sched, 10, 2, 0, 0, span=2)
    pairs = complete(sched, 10, 3, 0, 0, span=2)
    assert pairs == []


@pytest.mark.parametrize(
    "name", ["figure2-nested", "nestedparallel-orig-yes", "task-fib", "c_md"]
)
def test_plan_matches_batch_planner(name):
    """Incremental emission covers exactly the batch planner's pair set."""
    workload = REGISTRY.get(name)
    trace_path = tempfile.mkdtemp(prefix="plan-")
    try:
        tool = SwordTool(SwordConfig(log_dir=trace_path, buffer_events=128))
        rt = OpenMPRuntime(
            RunConfig(nthreads=4, scheduler=SchedulerConfig(seed=0)), tool=tool
        )
        rt.run(lambda m: workload.run_program(m))
        trace = TraceDir(trace_path)

        batch = {
            pair_key(a.key, b.key)
            for a, b in IntervalInventory(trace).concurrent_pairs()
        }

        analyzer = StreamingAnalyzer(trace_path)
        streamed = set()
        process = analyzer._process

        def capture(pairs):
            streamed.update(pair_key(a.key, b.key) for a, b in pairs)
            process(pairs)

        analyzer._process = capture
        replay_trace(trace, analyzer)
        assert streamed == batch
        assert analyzer.scheduler.unsealed_groups() == []
    finally:
        shutil.rmtree(trace_path, ignore_errors=True)
