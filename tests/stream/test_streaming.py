"""Streaming analyzer: live feed, parity, checkpoint kill/resume."""

import json
import shutil
import tempfile

import pytest

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.common.errors import TraceFormatError
from repro.offline import OfflineAnalyzer
from repro.omp import OpenMPRuntime
from repro.stream import (
    Checkpoint,
    StreamingAnalyzer,
    StreamingInterrupted,
    replay_analyze,
    replay_trace,
    watch,
)
from repro.sword import SwordTool, TraceDir
from repro.workloads import REGISTRY


def blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


def make_trace(trace_path, name="c_md", nthreads=4, seed=0):
    workload = REGISTRY.get(name)
    tool = SwordTool(SwordConfig(log_dir=str(trace_path), buffer_events=256))
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
        tool=tool,
    )
    rt.run(lambda m: workload.run_program(m))
    return TraceDir(trace_path)


def test_watch_reports_races_before_run_ends():
    feed = []
    result = watch(
        REGISTRY.get("plusplus-orig-yes"),
        nthreads=4,
        on_race=lambda r: feed.append(r),
    )
    assert result.race_count == 2
    # The live feed fired during the run, strictly before it finished.
    assert len(feed) == 2
    assert result.time_to_first_race is not None
    assert result.time_to_first_race < result.elapsed_seconds
    assert {r.key for r in feed} == result.races.pc_pairs()


def test_watch_matches_post_mortem(trace_dir):
    workload = REGISTRY.get("c_md")
    watched = watch(workload, nthreads=4, seed=0)
    make_trace(trace_dir)
    post = OfflineAnalyzer(TraceDir(trace_dir)).analyze()
    assert blob(watched.races) == blob(post.races)


def test_replay_analyze_matches_post_mortem(trace_dir):
    trace = make_trace(trace_dir, name="figure2-nested")
    post = OfflineAnalyzer(trace).analyze()
    streamed = replay_analyze(trace_dir)
    assert blob(streamed.races) == blob(post.races)
    assert streamed.stats.concurrent_pairs == post.stats.concurrent_pairs


def test_checkpoint_kill_and_resume(trace_dir, tmp_path):
    """The acceptance scenario: die mid-analysis, resume, same race set."""
    trace = make_trace(trace_dir)
    gold = OfflineAnalyzer(trace).analyze().races
    ckpt = tmp_path / "checkpoint.json"

    with pytest.raises(StreamingInterrupted):
        replay_analyze(trace_dir, checkpoint_path=ckpt, max_pairs=3)
    assert ckpt.exists()
    partial = Checkpoint(ckpt)
    assert len(partial.analyzed) == 3

    resumed = replay_analyze(trace_dir, checkpoint_path=ckpt)
    assert blob(resumed.races) == blob(gold)


def test_resume_skips_checkpointed_pairs(trace_dir, tmp_path):
    trace = make_trace(trace_dir, name="plusplus-orig-yes")
    ckpt = tmp_path / "checkpoint.json"
    first = StreamingAnalyzer(trace_dir, checkpoint_path=ckpt)
    replay_trace(trace, first)
    assert first.pairs_analyzed > 0 and first.pairs_skipped == 0

    second = StreamingAnalyzer(trace_dir, checkpoint_path=ckpt)
    replay_trace(trace, second)
    assert second.pairs_analyzed == 0
    assert second.pairs_skipped == first.pairs_analyzed
    assert blob(second.races) == blob(first.races)


def test_checkpoint_save_is_atomic_and_versioned(tmp_path):
    path = tmp_path / "ck.json"
    ck = Checkpoint(path)
    ck.analyzed.add(((0, 1, 0), (1, 1, 0)))
    ck.save()
    assert not path.with_name("ck.json.tmp").exists()
    assert Checkpoint(path).analyzed == ck.analyzed

    payload = json.loads(path.read_text())
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(TraceFormatError):
        Checkpoint(path)


def test_checkpoint_rejects_garbage(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("{not json")
    with pytest.raises(TraceFormatError):
        Checkpoint(path)


def test_streaming_handles_race_free_workload():
    result = watch(REGISTRY.get("critical-orig-no"), nthreads=4)
    assert result.race_count == 0
    assert result.time_to_first_race is None


def test_streaming_tasking_extension_parity(trace_dir):
    """Tasky groups wait for the seal, then judge with the final graph."""
    trace = make_trace(trace_dir, name="task-reduce-racy")
    post = OfflineAnalyzer(trace).analyze()
    assert blob(replay_analyze(trace_dir).races) == blob(post.races)
    watched = watch(REGISTRY.get("task-reduce-racy"), nthreads=4, seed=0)
    assert blob(watched.races) == blob(post.races)
