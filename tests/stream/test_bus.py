"""Flush-event bus: live notification contract and replay equivalence."""

from collections import defaultdict

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.omp import OpenMPRuntime
from repro.stream import TraceObserver, replay_trace
from repro.sword import SwordTool, TraceDir
from repro.sword.reader import ThreadTraceReader


class Recorder(TraceObserver):
    """Captures every notification in arrival order."""

    def __init__(self):
        self.events = []

    def on_trace_begin(self, producer):
        self.events.append(("begin",))

    def on_region(self, pid, info):
        self.events.append(("region", pid, dict(info)))

    def on_chunk(self, gid, row):
        self.events.append(("chunk", gid, row))

    def on_interval_end(self, gid, pid, bid, slot, span):
        self.events.append(("end", gid, pid, bid, slot, span))

    def on_trace_end(self, producer):
        self.events.append(("finish",))


def two_interval_program(m):
    a = m.alloc_scalar("a")

    def body(ctx):
        ctx.write(a, 0, float(ctx.tid))
        ctx.barrier()
        ctx.read(a, 0)

    m.parallel(body, nthreads=3)


def run_with_observer(trace_dir, observer, program=two_interval_program):
    tool = SwordTool(SwordConfig(log_dir=trace_dir, buffer_events=64))
    tool.subscribe(observer)
    rt = OpenMPRuntime(
        RunConfig(nthreads=3, scheduler=SchedulerConfig(seed=0)), tool=tool
    )
    rt.run(program)
    return tool


def test_live_notification_ordering(trace_dir):
    rec = Recorder()
    run_with_observer(trace_dir, rec)

    kinds = [e[0] for e in rec.events]
    assert kinds[0] == "begin"
    assert kinds[-1] == "finish"
    assert kinds.count("begin") == 1 and kinds.count("finish") == 1

    # Every chunk's region was announced first.
    announced = set()
    seen_chunk_pids = []
    for e in rec.events:
        if e[0] == "region":
            announced.add(e[1])
        elif e[0] == "chunk":
            seen_chunk_pids.append(e[2].pid)
            assert e[2].pid in announced

    # Three barrier intervals per thread: bid 0, the post-barrier bid 1,
    # and bid 2 after the implicit region-end barrier.
    ends = [e for e in rec.events if e[0] == "end"]
    assert {(gid, pid, bid) for _, gid, pid, bid, _, _ in ends} == {
        (gid, 1, bid) for gid in (0, 1, 2) for bid in (0, 1, 2)
    }

    # The last chunk of each interval precedes its end notification.
    last_chunk_pos = {}
    for i, e in enumerate(rec.events):
        if e[0] == "chunk":
            last_chunk_pos[(e[1], e[2].pid, e[2].bid)] = i
    for i, e in enumerate(rec.events):
        if e[0] == "end":
            _, gid, pid, bid, _, _ = e
            assert last_chunk_pos[(gid, pid, bid)] < i


def test_chunk_data_durable_when_notified(trace_dir):
    """A live reader can materialise every chunk inside its notification."""
    import pathlib

    trace_dir = pathlib.Path(trace_dir)

    class ChunkReader(TraceObserver):
        def __init__(self):
            self.readers = {}
            self.events_seen = 0

        def on_chunk(self, gid, row):
            reader = self.readers.get(gid)
            if reader is None:
                reader = ThreadTraceReader(trace_dir, gid, live=True)
                self.readers[gid] = reader
            records = reader.read_range(row.data_begin, row.size)
            self.events_seen += records.shape[0]

        def on_trace_end(self, producer):
            for reader in self.readers.values():
                reader.close()

    obs = ChunkReader()
    tool = run_with_observer(trace_dir, obs)
    assert obs.events_seen == tool.stats["events"]


def test_replay_matches_live_sequence(trace_dir):
    live = Recorder()
    run_with_observer(trace_dir, live)

    replayed = Recorder()
    replay_trace(TraceDir(trace_dir), replayed)

    def summarize(rec):
        regions = {e[1]: e[2] for e in rec.events if e[0] == "region"}
        chunks = defaultdict(list)
        for e in rec.events:
            if e[0] == "chunk":
                chunks[e[1]].append(e[2])
        ends = {tuple(e[1:]) for e in rec.events if e[0] == "end"}
        return regions, dict(chunks), ends

    # Same regions, identical per-thread chunk-row sequences, same
    # interval completions (cross-thread interleaving may differ).
    assert summarize(replayed) == summarize(live)


def test_unsubscribed_logger_output_unchanged(trace_dir, tmp_path):
    """Observers force eager flushes; the resulting trace is identical."""
    run_with_observer(trace_dir, Recorder())
    plain = tmp_path / "plain"
    tool = SwordTool(SwordConfig(log_dir=str(plain), buffer_events=64))
    rt = OpenMPRuntime(
        RunConfig(nthreads=3, scheduler=SchedulerConfig(seed=0)), tool=tool
    )
    rt.run(two_interval_program)

    observed = TraceDir(trace_dir)
    baseline = TraceDir(plain)
    for gid in baseline.thread_gids:
        with baseline.reader(gid) as a, observed.reader(gid) as b:
            assert a.rows == b.rows
