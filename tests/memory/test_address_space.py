"""Simulated address space and allocator."""

import numpy as np
import pytest

from repro.common.errors import RuntimeModelError, SimulatedOOMError
from repro.memory.accounting import NodeMemory
from repro.memory.address_space import ALIGNMENT, AddressSpace, HEAP_BASE


def test_allocations_are_disjoint_and_aligned():
    space = AddressSpace()
    a = space.alloc_array("a", 100, np.float64)
    b = space.alloc_array("b", 7, np.int32)
    assert a.allocation.base % ALIGNMENT == 0 or a.allocation.base == HEAP_BASE
    assert a.allocation.end <= b.allocation.base
    assert b.allocation.base % ALIGNMENT == 0


def test_addr_and_index_roundtrip():
    space = AddressSpace()
    a = space.alloc_array("a", 10, np.float64)
    for i in range(10):
        assert a.index_of(a.addr(i)) == i
    assert a.addr(-1) == a.addr(9)
    with pytest.raises(IndexError):
        a.addr(10)
    with pytest.raises(IndexError):
        a.index_of(a.allocation.end)


def test_find_reverse_lookup():
    space = AddressSpace()
    a = space.alloc_array("a", 4, np.float64)
    b = space.alloc_array("b", 4, np.float64)
    assert space.find(a.addr(2)) is a.allocation
    assert space.find(b.addr(0)) is b.allocation
    assert space.find(HEAP_BASE - 1) is None
    # A gap address between allocations maps to nothing.
    gap = a.allocation.end
    if gap < b.allocation.base:
        assert space.find(gap) is None


def test_sim_scale_inflates_accounting_not_backing():
    accountant = NodeMemory(limit=10**9)
    space = AddressSpace(accountant)
    a = space.alloc_array("big", 100, np.float64, sim_scale=1000)
    assert a.data.nbytes == 800
    assert a.allocation.sim_bytes == 800_000
    assert accountant.current("app") == 800_000
    # The simulated extent is reserved so the next base does not collide.
    b = space.alloc_array("next", 1, np.float64)
    assert b.allocation.base >= a.allocation.base + 800_000


def test_alloc_oom_rolls_back():
    accountant = NodeMemory(limit=1000)
    space = AddressSpace(accountant)
    space.alloc_array("ok", 10, np.float64)  # 80 bytes
    with pytest.raises(SimulatedOOMError):
        space.alloc_array("huge", 1000, np.float64)
    # Rolled back: the failed allocation is not findable.
    assert len(space.allocations()) == 1
    assert accountant.current("app") == 80


def test_fill_modes():
    space = AddressSpace()
    z = space.alloc_array("z", 5, np.float64, fill=3)
    assert (z.data == 3.0).all()
    e = space.alloc_array("e", 5, np.float64, fill=None)
    assert e.data.shape == (5,)
    s = space.alloc_scalar("s", np.int64, fill=7)
    assert s.data[0] == 7


def test_zero_size_and_bad_scale_rejected():
    space = AddressSpace()
    with pytest.raises(RuntimeModelError):
        space.alloc_array("empty", 0, np.float64)
    with pytest.raises(RuntimeModelError):
        space.alloc_array("bad", 4, np.float64, sim_scale=0)


def test_app_bytes_totals_sim_sizes():
    space = AddressSpace()
    space.alloc_array("a", 10, np.float64)
    space.alloc_array("b", 10, np.float64, sim_scale=2)
    assert space.app_bytes == 80 + 160
