"""Node-memory accountant: limits, categories, OOM."""

import pytest

from repro.common.errors import SimulatedOOMError
from repro.memory.accounting import NodeMemory


def test_charge_and_release():
    mem = NodeMemory(limit=1000)
    mem.charge("app", 400)
    mem.charge("tool", 100)
    assert mem.current() == 500
    assert mem.current("app") == 400
    mem.release("app", 150)
    assert mem.current("app") == 250
    assert mem.peak("app") == 400
    assert mem.peak() == 500


def test_oom_raises_and_leaves_state_consistent():
    mem = NodeMemory(limit=1000)
    mem.charge("app", 900)
    with pytest.raises(SimulatedOOMError) as exc:
        mem.charge("shadow", 200)
    assert exc.value.requested == 200
    assert exc.value.in_use == 900
    assert exc.value.limit == 1000
    # The failed charge was not applied.
    assert mem.current() == 900
    mem.charge("shadow", 100)  # exactly at the limit is fine
    assert mem.current() == 1000


def test_release_more_than_charged_is_an_error():
    mem = NodeMemory(limit=100)
    mem.charge("app", 10)
    with pytest.raises(ValueError):
        mem.release("app", 20)
    with pytest.raises(ValueError):
        mem.release("nonexistent", 1)


def test_negative_amounts_rejected():
    mem = NodeMemory(limit=100)
    with pytest.raises(ValueError):
        mem.charge("app", -1)
    mem.charge("app", 5)
    with pytest.raises(ValueError):
        mem.release("app", -1)


def test_snapshot():
    mem = NodeMemory(limit=1000)
    mem.charge("app", 300)
    mem.charge("tool", 50)
    mem.release("tool", 25)
    snap = mem.snapshot()
    assert snap.current_total == 325
    assert snap.peak_total == 350
    assert snap.by_category_current == {"app": 300, "tool": 25}
    assert snap.by_category_peak == {"app": 300, "tool": 50}


def test_zero_limit_rejected():
    with pytest.raises(ValueError):
        NodeMemory(limit=0)


def test_observer_feed():
    mem = NodeMemory(limit=1000)
    seen = []
    mem.subscribe(lambda cat, delta, current: seen.append((cat, delta, current)))
    mem.charge("tool", 100)
    mem.charge("app", 50)
    mem.release("tool", 40)
    assert seen == [("tool", 100, 100), ("app", 50, 50), ("tool", -40, 60)]


def test_observer_not_called_on_failed_charge():
    mem = NodeMemory(limit=100)
    seen = []
    mem.subscribe(lambda *event: seen.append(event))
    with pytest.raises(SimulatedOOMError):
        mem.charge("app", 200)
    assert seen == []


def test_observer_may_read_accountant():
    mem = NodeMemory(limit=1000)
    totals = []
    mem.subscribe(lambda cat, delta, current: totals.append(mem.current()))
    mem.charge("app", 10)
    mem.charge("app", 20)
    assert totals == [10, 30]
