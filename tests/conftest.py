"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pathlib
import sys

# Make this conftest importable (`from conftest import ...`) from tests in
# subdirectories, which are not packages.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import shutil
import tempfile

import pytest

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.faults.fixtures import *  # noqa: F401,F403 (fault-injection fixtures)
from repro.offline import OfflineAnalyzer, oracle_races
from repro.omp import OpenMPRuntime, RecordingTool, ToolMux
from repro.sword import SwordTool, TraceDir


@pytest.fixture
def trace_dir():
    """A disposable trace directory."""
    path = tempfile.mkdtemp(prefix="sword-test-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def run_program(program, *, nthreads=4, seed=0, yield_every=0, tool=None):
    """Run a model program on a fresh runtime; returns the runtime."""
    rt = OpenMPRuntime(
        RunConfig(
            nthreads=nthreads,
            scheduler=SchedulerConfig(seed=seed, yield_every=yield_every),
        ),
        tool=tool,
    )
    rt.run(program)
    return rt


def sword_and_oracle(program, trace_path, *, nthreads=4, seed=0, yield_every=0):
    """Run once with recorder+sword attached; return (sword races, oracle races).

    The workhorse of the end-to-end tests: the streaming interval-tree
    analysis must agree exactly with the exhaustive oracle on the same
    execution.
    """
    rec = RecordingTool()
    sword = SwordTool(SwordConfig(log_dir=trace_path, buffer_events=128))
    rt = OpenMPRuntime(
        RunConfig(
            nthreads=nthreads,
            scheduler=SchedulerConfig(seed=seed, yield_every=yield_every),
        ),
        tool=ToolMux([rec, sword]),
    )
    rt.run(program)
    analysis = OfflineAnalyzer(TraceDir(trace_path)).analyze()
    oracle = oracle_races(rec, rt.mutexsets)
    return analysis.races, oracle, rec, rt
