"""Frame-resident digests: construction, folding, meta-row round trips.

The collection-time digest must (a) exactly equal what re-digesting the
inflated frame yields — the fold over flush-granularity parts loses
nothing — and (b) survive the meta-row token round trip under the
durable CRC, with forward compatibility for newer digest versions.
"""

import numpy as np
import pytest

from conftest import run_program
from repro.common import deprecation
from repro.common.errors import TraceFormatError
from repro.common.events import EVENT_DTYPE, FLAG_WRITE, KIND_ACCESS
from repro.common.config import SwordConfig
from repro.itree.digest import digests_may_race
from repro.sword import SwordTool, TraceDir
from repro.sword.digest import FrameDigest, decode_digest, fold_digests
from repro.sword.traceformat import MetaRow, parse_meta_file, format_meta_file


def _access(addr, *, write=True, size=8, count=1, stride=0, pc=100):
    rec = np.zeros(1, dtype=EVENT_DTYPE)[0]
    rec["kind"] = KIND_ACCESS
    rec["flags"] = FLAG_WRITE if write else 0
    rec["size"] = size
    rec["addr"] = addr
    rec["count"] = count
    rec["stride"] = stride
    rec["pc"] = pc
    return rec


def _records(*recs):
    out = np.zeros(len(recs), dtype=EVENT_DTYPE)
    for i, rec in enumerate(recs):
        out[i] = rec
    return out


class TestFromRecords:
    def test_counts_and_box(self):
        records = _records(
            _access(1000, write=True, size=8),
            _access(2000, write=False, size=4),
        )
        d = FrameDigest.from_records(records)
        assert (d.events, d.nodes, d.writes, d.reads) == (2, 2, 1, 1)
        assert (d.lo, d.hi) == (1000, 2003)
        assert not d.all_atomic

    def test_bulk_stride_extends_box(self):
        # 10 elements of 8 bytes every 16 bytes from 0: last byte 151.
        d = FrameDigest.from_records(
            _records(_access(0, size=8, count=10, stride=16))
        )
        assert (d.lo, d.hi) == (0, 151)
        assert d.gcd == 16
        assert d.width == 8

    def test_structural_events_counted_but_not_summarised(self):
        rec = np.zeros(1, dtype=EVENT_DTYPE)
        rec["kind"] = 7  # non-access
        d = FrameDigest.from_records(rec)
        assert d.events == 1 and d.nodes == 0
        assert not digests_may_race(d, d)

    def test_fold_matches_whole_array_digest(self):
        records = _records(
            _access(0, size=8, count=4, stride=32),
            _access(16, size=8),
            _access(160, size=8, count=2, stride=32),
        )
        whole = FrameDigest.from_records(records)
        parts = fold_digests(
            FrameDigest.from_records(records[i : i + 1]) for i in range(3)
        )
        assert parts == whole

    def test_fold_empty_passthrough(self):
        d = FrameDigest.from_records(_records(_access(64)))
        assert d.fold(FrameDigest.empty(3)).nodes == d.nodes
        assert FrameDigest.empty(3).fold(d).events == d.events + 3

    def test_disjoint_residue_classes_cannot_race(self):
        # Thread 0 touches bytes ≡ 0 (mod 64), thread 1 bytes ≡ 32.
        a = FrameDigest.from_records(
            _records(_access(0, size=8, count=8, stride=64))
        )
        b = FrameDigest.from_records(
            _records(_access(32, size=8, count=8, stride=64))
        )
        assert not digests_may_race(a, b)
        # Same class → a shared byte is possible.
        assert digests_may_race(a, a)


class TestTokenRoundTrip:
    def test_encode_decode(self):
        d = FrameDigest.from_records(
            _records(_access(8, count=3, stride=24), _access(56, write=False))
        )
        assert decode_digest(d.encode()) == d

    def test_newer_version_decodes_to_none(self):
        assert decode_digest("d2=whatever,future,fields") is None
        assert decode_digest("d99=1,2,3") is None

    def test_malformed_tokens_raise(self):
        with pytest.raises(ValueError):
            decode_digest("d1=1,2,3")  # wrong field count
        with pytest.raises(ValueError):
            decode_digest("d1=a,b,c,d,e,f,g,h,i,j,k")  # non-integer
        with pytest.raises(ValueError):
            decode_digest("x1=1")  # not a digest token

    def test_meta_row_carries_digest_through_durable_crc(self):
        digest = FrameDigest.from_records(_records(_access(512, size=4)))
        row = MetaRow(
            pid=1, ppid=0, bid=2, offset=0, span=4,
            level=0, data_begin=0, size=40, digest=digest,
        )
        text = format_meta_file([row], durable=True)
        (parsed,) = parse_meta_file(text)
        assert parsed.digest == digest

    def test_digestless_row_still_parses(self):
        row = MetaRow(
            pid=1, ppid=0, bid=2, offset=0, span=4,
            level=0, data_begin=0, size=40,
        )
        (parsed,) = parse_meta_file(format_meta_file([row]))
        assert parsed.digest is None

    def test_newer_digest_token_is_forward_compatible(self):
        line = "1 0 2 0 4 0 0 40 d9=anything"
        (parsed,) = parse_meta_file(line + "\n")
        assert parsed.digest is None  # falls back to inflation

    def test_malformed_digest_token_is_a_format_error(self):
        with pytest.raises(TraceFormatError):
            parse_meta_file("1 0 2 0 4 0 0 40 d1=1,2\n")


class TestCollectedDigests:
    def _collect(self, trace_dir, program, **config):
        tool = SwordTool(
            SwordConfig(log_dir=trace_dir, buffer_events=32, **config)
        )
        run_program(program, nthreads=2, tool=tool)
        return TraceDir(trace_dir)

    @staticmethod
    def _program(m):
        a = m.alloc_array("a", 64)

        def body(ctx):
            lo, hi = ctx.static_chunk(64)
            ctx.write_slice(a, lo, hi, np.arange(lo, hi, dtype=float))
            ctx.barrier()
            ctx.read_slice(a, lo, hi)

        m.parallel(body)

    @pytest.mark.parametrize("config", [{}, {"delta_filter": True}, {"durable": True}])
    def test_logged_digest_matches_reinflated_frame(self, trace_dir, config):
        trace = self._collect(trace_dir, self._program, **config)
        rows_seen = 0
        for gid in trace.thread_gids:
            with trace.reader(gid) as reader:
                for view in reader.frames():
                    assert view.digest is not None
                    assert not view.inflated  # digest never touches payload
                    again = FrameDigest.from_records(view.events())
                    assert view.digest == again
                    rows_seen += 1
        assert rows_seen > 0

    def test_frame_at_without_row_has_no_digest(self, trace_dir):
        trace = self._collect(trace_dir, self._program)
        with trace.reader(trace.thread_gids[0]) as reader:
            row = reader.rows[0]
            assert reader.frame_at(row.data_begin, row.size).digest is not None
            # An ad-hoc sub-range matches no meta row.
            view = reader.frame_at(row.data_begin, 40)
            assert view.digest is None
            assert view.events().shape[0] == 1

    def test_deprecated_readers_warn_once_and_delegate(self, trace_dir):
        trace = self._collect(trace_dir, self._program)
        deprecation.reset()
        with trace.reader(trace.thread_gids[0]) as reader:
            row = reader.rows[0]
            with pytest.warns(DeprecationWarning, match="read_range"):
                eager = reader.read_range(row.data_begin, row.size)
            lazy = reader.frame_at(row.data_begin, row.size).events()
            assert eager.tobytes() == lazy.tobytes()
