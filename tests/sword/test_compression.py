"""Compression codecs: registry, roundtrips, malformed input handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CodecError
from repro.common.events import Access, accesses_to_records
from repro.sword.compression import available, by_id, by_name
from repro.sword.compression.lzrle import LzRleCodec
from repro.sword.compression.lz4like import Lz4LikeCodec
from repro.sword.compression.snappylike import SnappyLikeCodec
from repro.sword.compression.zlibwrap import ZlibCodec

ALL_CODECS = [LzRleCodec(), Lz4LikeCodec(), SnappyLikeCodec(), ZlibCodec()]


def test_registry_has_paper_candidates():
    names = available()
    # lzrle stands in for LZO; lz4 and snappy match the paper's candidates.
    assert {"lzrle", "lz4", "snappy", "zlib"} <= set(names)


def test_registry_lookup_by_name_and_id():
    for name in available():
        codec = by_name(name)
        assert by_id(codec.codec_id) is codec
    with pytest.raises(CodecError):
        by_name("nope")
    with pytest.raises(CodecError):
        by_id(250)


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestRoundtrips:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b""), 0) == b""

    def test_zeros_compress_well(self, codec):
        data = bytes(8192)
        out = codec.compress(data)
        assert codec.decompress(out, len(data)) == data
        assert len(out) < len(data) / 4

    def test_incompressible_survives(self, codec):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
        assert codec.decompress(codec.compress(data), len(data)) == data

    def test_trace_records_roundtrip(self, codec):
        records = accesses_to_records(
            Access(addr=0x100000 + i * 8, size=8, count=1, stride=0,
                   is_write=i % 3 == 0, is_atomic=False, pc=0x1000 + i % 7)
            for i in range(500)
        )
        raw = records.tobytes()
        out = codec.decompress(codec.compress(raw), len(raw))
        assert out == raw

    def test_wrong_expected_size_rejected(self, codec):
        data = b"hello world" * 50
        compressed = codec.compress(data)
        with pytest.raises(CodecError):
            codec.decompress(compressed, len(data) + 1)


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=2048))
def test_property_roundtrip(codec, data):
    assert codec.decompress(codec.compress(data), len(data)) == data


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
@settings(max_examples=25, deadline=None)
@given(
    pattern=st.binary(min_size=1, max_size=16),
    repeats=st.integers(1, 300),
)
def test_property_repetitive_data(codec, pattern, repeats):
    data = pattern * repeats
    out = codec.compress(data)
    assert codec.decompress(out, len(data)) == data


def test_lzrle_truncated_stream_detected():
    codec = LzRleCodec()
    compressed = codec.compress(b"\x00" * 100)
    with pytest.raises(CodecError):
        codec.decompress(compressed[:-1], 100)


def test_lz4_bad_offset_detected():
    codec = Lz4LikeCodec()
    # token: 0 literals + match; offset 5 with empty output -> invalid.
    bogus = bytes([0x01, 0x05, 0x00])
    with pytest.raises(CodecError):
        codec.decompress(bogus, 10)


def test_snappy_header_mismatch_detected():
    codec = SnappyLikeCodec()
    compressed = codec.compress(b"abcdef")
    with pytest.raises(CodecError):
        codec.decompress(compressed, 7)
