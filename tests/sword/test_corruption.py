"""Failure injection: corrupted traces fail loudly, never silently."""

import json
import struct

import pytest

from repro.common.config import RunConfig, SwordConfig
from repro.common.errors import CodecError, TraceFormatError
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool, TraceDir
from repro.sword.traceformat import MANIFEST_NAME, crc32, log_name, meta_name


@pytest.fixture
def collected(trace_dir):
    tool = SwordTool(SwordConfig(log_dir=trace_dir, buffer_events=32))
    rt = OpenMPRuntime(RunConfig(nthreads=2), tool=tool)

    def program(m):
        a = m.alloc_array("a", 128)

        def body(ctx):
            for i in ctx.for_range(128):
                ctx.write(a, i, float(i))
        m.parallel(body)

    rt.run(program)
    return trace_dir


def _first_log(trace):
    gid = trace.thread_gids[0]
    return trace.path / log_name(gid), gid


def test_missing_manifest_detected(collected):
    trace = TraceDir(collected)
    (trace.path / MANIFEST_NAME).unlink()
    with pytest.raises(TraceFormatError):
        TraceDir(collected)


def test_truncated_log_detected(collected):
    trace = TraceDir(collected)
    path, gid = _first_log(trace)
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(TraceFormatError):
        trace.reader(gid)


def test_corrupted_block_magic_detected(collected):
    trace = TraceDir(collected)
    path, gid = _first_log(trace)
    data = bytearray(path.read_bytes())
    data[0] = ord("X")
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError):
        trace.reader(gid)


def test_corrupted_payload_detected_on_read(collected):
    trace = TraceDir(collected)
    path, gid = _first_log(trace)
    data = bytearray(path.read_bytes())
    # Flip bytes in the middle of the first payload (past the 32 B v2
    # frame header) — the payload CRC catches this at read time.
    for i in range(40, 50):
        data[i] ^= 0xFF
    path.write_bytes(bytes(data))
    reader = trace.reader(gid)
    with pytest.raises((CodecError, TraceFormatError)):
        for row in reader.rows:
            reader.read_chunk(row)
    reader.close()


def test_corrupted_frame_header_detected(collected):
    trace = TraceDir(collected)
    path, gid = _first_log(trace)
    data = bytearray(path.read_bytes())
    data[8] ^= 0xFF  # uncompressed-offset field: header CRC must catch it
    path.write_bytes(bytes(data))
    with pytest.raises(TraceFormatError, match="header CRC"):
        trace.reader(gid)


def test_garbage_meta_row_detected(collected):
    trace = TraceDir(collected)
    gid = trace.thread_gids[0]
    meta_path = trace.path / meta_name(gid)
    meta_path.write_text(meta_path.read_text() + "not a row at all\n")
    with pytest.raises(TraceFormatError):
        trace.reader(gid)


def test_chunk_pointing_past_log_detected(collected):
    trace = TraceDir(collected)
    gid = trace.thread_gids[0]
    meta_path = trace.path / meta_name(gid)
    # Append a plausible-looking row whose data_begin is beyond the log.
    meta_path.write_text(
        meta_path.read_text() + "1 - 0 0 2 1 99999960 40\n"
    )
    reader = trace.reader(gid)
    bad_row = reader.rows[-1]
    with pytest.raises(TraceFormatError):
        reader.read_chunk(bad_row)
    reader.close()


def test_unknown_codec_id_detected(collected):
    trace = TraceDir(collected)
    path, gid = _first_log(trace)
    data = bytearray(path.read_bytes())
    data[20] = 200  # codec-id byte of the first frame header
    # Re-seal the header CRC so the bogus codec id survives validation
    # and is caught by the codec registry, not the checksum.
    data[28:32] = struct.pack("<I", crc32(bytes(data[:28])))
    path.write_bytes(bytes(data))
    reader = trace.reader(gid)
    with pytest.raises(CodecError):
        for row in reader.rows:
            reader.read_chunk(row)
    reader.close()


def test_manifest_thread_list_must_match_files(collected):
    trace = TraceDir(collected)
    manifest = json.loads((trace.path / MANIFEST_NAME).read_text())
    manifest["thread_gids"].append(12345)
    (trace.path / MANIFEST_NAME).write_text(json.dumps(manifest))
    trace2 = TraceDir(collected)
    with pytest.raises(FileNotFoundError):
        trace2.reader(12345)
