"""End-to-end trace collection and streaming readback."""

import json

import numpy as np
import pytest

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.common.events import KIND_ACCESS
from repro.memory.accounting import NodeMemory
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool, TraceDir
from repro.sword.traceformat import MANIFEST_NAME, MUTEXSETS_NAME, REGIONS_NAME


def collect(program, trace_dir, *, nthreads=4, buffer_events=64, seed=0,
            accountant=None, codec="lzrle"):
    tool = SwordTool(
        SwordConfig(log_dir=trace_dir, buffer_events=buffer_events, codec=codec),
        accountant=accountant,
    )
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
        tool=tool,
    )
    rt.run(program)
    return tool


def simple_program(m):
    a = m.alloc_array("a", 64)

    def body(ctx):
        lo, hi = ctx.static_chunk(64)
        ctx.write_slice(a, lo, hi, np.arange(lo, hi, dtype=float))
        ctx.barrier()
        ctx.read_slice(a, lo, hi)

    m.parallel(body)


def test_trace_dir_files_exist(trace_dir):
    collect(simple_program, trace_dir)
    trace = TraceDir(trace_dir)
    assert len(trace.thread_gids) == 4
    for gid in trace.thread_gids:
        reader = trace.reader(gid)
        assert reader.rows, f"thread {gid} has no meta rows"
        reader.close()
    for name in (MANIFEST_NAME, REGIONS_NAME, MUTEXSETS_NAME):
        assert (trace.path / name).exists()


def test_metadata_rows_cover_log_bytes(trace_dir):
    collect(simple_program, trace_dir)
    trace = TraceDir(trace_dir)
    for gid in trace.thread_gids:
        with trace.reader(gid) as reader:
            covered = sum(r.size for r in reader.rows)
            assert covered == reader.uncompressed_bytes


def test_chunks_decode_to_original_accesses(trace_dir):
    collect(simple_program, trace_dir, nthreads=2)
    trace = TraceDir(trace_dir)
    all_accesses = []
    for gid in trace.thread_gids:
        with trace.reader(gid) as reader:
            for row in reader.rows:
                records = reader.read_chunk(row)
                mask = records["kind"] == KIND_ACCESS
                all_accesses.extend(records[mask]["count"].tolist())
    # 2 threads x (1 write range + 1 read range) of 32 elements.
    assert sorted(all_accesses) == [32, 32, 32, 32]


def test_buffer_flushes_span_interval_chunks(trace_dir):
    """Tiny buffer: chunks cross compressed-block boundaries and reassemble."""

    def busy_program(m):
        a = m.alloc_array("a", 512)

        def body(ctx):
            for i in ctx.for_range(512):
                ctx.write(a, i, float(i))
            for i in ctx.for_range(512):
                ctx.read(a, i)

        m.parallel(body, nthreads=2)

    tool = collect(busy_program, trace_dir, nthreads=2, buffer_events=32)
    assert tool.stats["flushes"] > 10
    trace = TraceDir(trace_dir)
    total = 0
    for gid in trace.thread_gids:
        with trace.reader(gid) as reader:
            for row in reader.rows:
                records = reader.read_chunk(row)
                total += int((records["kind"] == KIND_ACCESS).sum())
    # Two worksharing loops of 512 iterations each (distributed across the
    # team), one access per iteration.
    assert total == 2 * 512


@pytest.mark.parametrize("codec", ["lzrle", "lz4", "snappy", "zlib"])
def test_every_codec_roundtrips_a_trace(trace_dir, codec):
    collect(simple_program, trace_dir, nthreads=2, codec=codec)
    trace = TraceDir(trace_dir)
    assert trace.manifest["codec"] == codec
    counts = 0
    for gid in trace.thread_gids:
        with trace.reader(gid) as reader:
            for row in reader.rows:
                counts += reader.read_chunk(row).shape[0]
    assert counts > 0


def test_streaming_iter_range_matches_read_range(trace_dir):
    collect(simple_program, trace_dir, buffer_events=16)
    trace = TraceDir(trace_dir)
    gid = trace.thread_gids[0]
    with trace.reader(gid) as reader:
        row = max(reader.rows, key=lambda r: r.size)
        whole = reader.read_range(row.data_begin, row.size)
        streamed = list(reader.iter_range(row.data_begin, row.size))
        assert sum(part.shape[0] for part in streamed) == whole.shape[0]
        assert (np.concatenate(streamed) == whole).all()


def test_read_past_end_rejected(trace_dir):
    collect(simple_program, trace_dir)
    trace = TraceDir(trace_dir)
    with trace.reader(trace.thread_gids[0]) as reader:
        from repro.common.errors import TraceFormatError

        with pytest.raises(TraceFormatError):
            reader.read_range(0, reader.uncompressed_bytes + 40)
        with pytest.raises(TraceFormatError):
            reader.read_range(1, 40)  # misaligned


def test_memory_charge_is_per_thread_and_bounded(trace_dir):
    accountant = NodeMemory(limit=10**12)
    collect(simple_program, trace_dir, nthreads=4, accountant=accountant)
    cfg = SwordConfig(log_dir=trace_dir)
    assert accountant.peak("tool") == 4 * cfg.per_thread_bytes


def test_nested_regions_resume_outer_chunks(trace_dir):
    def nested_program(m):
        x = m.alloc_array("x", 8)

        def inner(ctx):
            ctx.write(x, 4 + ctx.tid, 1.0)

        def outer(ctx):
            ctx.write(x, ctx.tid, 1.0)      # outer interval, chunk 1
            if ctx.tid == 0:
                ctx.parallel(inner, nthreads=2)
            ctx.write(x, 2 + ctx.tid, 2.0)  # outer interval, chunk 2
        m.parallel(outer, nthreads=2)

    collect(nested_program, trace_dir, nthreads=2)
    trace = TraceDir(trace_dir)
    # The forking thread's outer interval appears as multiple chunk rows
    # with the same (pid, bid).
    forker = None
    for gid in trace.thread_gids:
        with trace.reader(gid) as reader:
            keyed = {}
            for row in reader.rows:
                keyed.setdefault((row.pid, row.bid), []).append(row)
            if any(len(chunks) > 1 for chunks in keyed.values()):
                forker = gid
    assert forker is not None
    # Regions table carries the fork positions for label reconstruction.
    assert any(info["ppid"] > 0 for info in trace.regions.values())


def test_manifest_statistics(trace_dir):
    tool = collect(simple_program, trace_dir)
    manifest = json.loads((TraceDir(trace_dir).path / MANIFEST_NAME).read_text())
    assert manifest["events"] == tool.stats["events"]
    assert manifest["threads"] == 4
    assert manifest["bytes_uncompressed"] >= manifest["bytes_compressed"] * 0
    assert manifest["buffer_events"] == 64
