"""Bounded event buffer: capacity, flush callbacks, fixed footprint."""

import numpy as np
import pytest

from repro.common.events import EVENT_BYTES, KIND_ACCESS, KIND_BARRIER, Access
from repro.sword.buffer import EventBuffer


def acc(i):
    return Access(addr=i * 8, size=8, count=1, stride=0, is_write=True,
                  is_atomic=False, pc=i)


def test_append_and_len():
    b = EventBuffer(capacity=10)
    for i in range(7):
        b.append_access(acc(i))
    assert len(b) == 7
    assert b.events_total == 7
    assert b.flushes == 0


def test_flush_on_capacity():
    flushed = []
    b = EventBuffer(capacity=5, on_flush=lambda r: flushed.append(r.copy()))
    for i in range(12):
        b.append_access(acc(i))
    assert b.flushes == 2
    assert [r.shape[0] for r in flushed] == [5, 5]
    assert len(b) == 2
    b.flush()
    assert [r.shape[0] for r in flushed] == [5, 5, 2]
    # Contents preserved in order.
    addrs = [int(rec["addr"]) for batch in flushed for rec in batch]
    assert addrs == [i * 8 for i in range(12)]


def test_flush_empty_is_noop():
    calls = []
    b = EventBuffer(capacity=4, on_flush=lambda r: calls.append(1))
    b.flush()
    assert calls == []


def test_mixed_event_kinds():
    b = EventBuffer(capacity=16)
    b.append_access(acc(1))
    b.append_event(KIND_BARRIER, addr=3, aux=2)
    records = None

    def grab(r):
        nonlocal records
        records = r.copy()

    b.on_flush = grab
    b.flush()
    assert records.shape[0] == 2
    assert int(records[0]["kind"]) == KIND_ACCESS
    assert int(records[1]["kind"]) == KIND_BARRIER
    assert int(records[1]["aux"]) == 2


def test_footprint_is_fixed():
    b = EventBuffer(capacity=25_000)
    assert b.nbytes == 25_000 * EVENT_BYTES  # ~1 MB of records
    before = b.nbytes
    for i in range(60_000):
        b.append_access(acc(i))
    assert b.nbytes == before  # bounded: appends never grow it


def test_invalid_capacity():
    with pytest.raises(ValueError):
        EventBuffer(capacity=0)


def test_fill_to_exact_capacity_defers_flush():
    """Exactly-full is a boundary: the flush happens on the *next* append."""
    flushed = []
    b = EventBuffer(capacity=4, on_flush=lambda r: flushed.append(r.copy()))
    for i in range(4):
        b.append_access(acc(i))
    assert len(b) == 4
    assert b.flushes == 0 and flushed == []
    b.append_access(acc(4))  # the overflowing append triggers the flush
    assert b.flushes == 1
    assert flushed[0].shape[0] == 4
    assert len(b) == 1
    b.flush()
    assert [int(r["addr"]) for r in flushed[1]] == [32]


def test_explicit_flush_at_exact_capacity():
    flushed = []
    b = EventBuffer(capacity=4, on_flush=lambda r: flushed.append(r.copy()))
    for i in range(4):
        b.append_access(acc(i))
    b.flush()
    assert b.flushes == 1 and flushed[0].shape[0] == 4
    assert len(b) == 0
    b.flush()  # now empty: a no-op, not a zero-length callback
    assert b.flushes == 1 and len(flushed) == 1


def test_on_flush_view_is_not_valid_after_reset():
    """The callback receives a view; retaining it observes slot reuse."""
    retained = []
    b = EventBuffer(capacity=2, on_flush=lambda r: retained.append(r))
    b.append_access(acc(1))
    b.append_access(acc(2))
    b.flush()
    view = retained[0]
    assert np.shares_memory(view, b._records)
    assert [int(r["addr"]) for r in view] == [8, 16]
    # New appends reuse the flushed slots: the stale view now shows them,
    # which is exactly why consumers must copy (or fully consume) inside
    # the callback.
    b.append_access(acc(9))
    assert int(view[0]["addr"]) == 72


def test_slot_reuse_after_flush_does_not_leak_old_fields():
    b = EventBuffer(capacity=2)
    b.append_access(Access(addr=1, size=8, count=9, stride=8, is_write=True,
                           is_atomic=True, pc=5, msid=7))
    b.append_access(acc(2))  # fills buffer
    b.append_access(acc(3))  # triggers flush, reuses slot 0
    captured = None

    def grab(r):
        nonlocal captured
        captured = r.copy()

    b.on_flush = grab
    b.flush()
    rec = captured[0]
    assert int(rec["aux"]) == 0
    assert int(rec["msid"]) == 0
    assert int(rec["count"]) == 1
