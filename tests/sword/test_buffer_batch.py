"""Columnar batch appends: equivalence with the scalar path, flush splits."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.events import AccessBatch
from repro.sword.buffer import EventBuffer


def _recording_buffer(capacity):
    flushed = []
    buf = EventBuffer(capacity=capacity, on_flush=lambda r: flushed.append(r.copy()))
    return buf, flushed


def _stream(flushed, buf):
    """The full record stream a reader would see: flushes + residue."""
    buf.flush()
    if not flushed:
        return np.empty(0, dtype=buf._records.dtype)
    return np.concatenate(flushed)


def _batch(n, seed=0, **scalar_overrides):
    rng = np.random.default_rng(seed)
    count = rng.integers(1, 5, size=n, dtype=np.uint32)
    # Scalar accesses carry stride 0; bulk ones need a non-zero stride.
    stride = np.where(count > 1, rng.integers(8, 64, size=n), 0).astype(np.int32)
    cols = dict(
        addr=rng.integers(0, 2**48, size=n, dtype=np.uint64),
        pc=rng.integers(0, 2**32, size=n, dtype=np.uint64),
        size=np.full(n, 8, dtype=np.uint16),
        msid=rng.integers(0, 4, size=n, dtype=np.uint32),
        count=count,
        stride=stride,
        task_point=rng.integers(0, 9, size=n, dtype=np.uint64),
    )
    cols.update(scalar_overrides)
    return AccessBatch.make(
        cols.pop("addr"),
        size=cols.pop("size"),
        is_write=bool(seed % 2),
        pc=cols.pop("pc"),
        **cols,
    )


class TestBatchEqualsScalars:
    def test_single_batch_matches_per_access_appends(self):
        batch = _batch(37, seed=1)
        b1, f1 = _recording_buffer(capacity=16)
        b1.append_access_batch(batch)
        b2, f2 = _recording_buffer(capacity=16)
        for access in batch.to_accesses():
            b2.append_access(access)
        assert b1.flushes == b2.flushes
        assert _stream(f1, b1).tobytes() == _stream(f2, b2).tobytes()

    def test_scalar_columns_broadcast(self):
        addrs = np.arange(0x1000, 0x1000 + 8 * 20, 8, dtype=np.uint64)
        batch = AccessBatch.make(addrs, size=8, is_write=True, pc=0xBEEF)
        buf, flushed = _recording_buffer(capacity=64)
        buf.append_access_batch(batch)
        stream = _stream(flushed, buf)
        assert list(stream["addr"]) == list(addrs)
        assert set(stream["pc"]) == {0xBEEF}
        assert set(stream["size"]) == {8}

    def test_batch_larger_than_capacity_splits_at_flush_boundary(self):
        batch = _batch(50, seed=2)
        buf, flushed = _recording_buffer(capacity=8)
        buf.append_access_batch(batch)
        # 50 records through an 8-slot buffer: six full flushes, 2 left.
        assert buf.flushes == 6
        assert [r.shape[0] for r in flushed] == [8] * 6
        assert len(buf) == 2

    def test_batch_into_prefilled_buffer(self):
        prefill = _batch(5, seed=3)
        tail = _batch(9, seed=4)
        b1, f1 = _recording_buffer(capacity=6)
        b2, f2 = _recording_buffer(capacity=6)
        for access in prefill.to_accesses():
            b1.append_access(access)
            b2.append_access(access)
        b1.append_access_batch(tail)
        for access in tail.to_accesses():
            b2.append_access(access)
        assert b1.flushes == b2.flushes
        assert _stream(f1, b1).tobytes() == _stream(f2, b2).tobytes()

    def test_exactly_full_defers_flush_like_scalar_path(self):
        """A batch that lands exactly on capacity must not flush eagerly."""
        buf, flushed = _recording_buffer(capacity=10)
        buf.append_access_batch(_batch(10, seed=5))
        assert buf.flushes == 0 and flushed == []
        assert len(buf) == 10

    def test_empty_batch_is_a_noop(self):
        buf, flushed = _recording_buffer(capacity=4)
        buf.append_access_batch(_batch(0))
        assert len(buf) == 0 and buf.events_total == 0 and flushed == []


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(1, 32),
    sizes=st.lists(st.integers(0, 40), min_size=1, max_size=6),
    prefill=st.integers(0, 10),
)
def test_property_batches_equal_scalar_appends(capacity, sizes, prefill):
    """Any mix of batches after any prefill: byte-identical streams."""
    batches = [_batch(n, seed=i) for i, n in enumerate(sizes)]
    head = _batch(prefill, seed=99)
    b1, f1 = _recording_buffer(capacity)
    b2, f2 = _recording_buffer(capacity)
    for access in head.to_accesses():
        b1.append_access(access)
        b2.append_access(access)
    for batch in batches:
        b1.append_access_batch(batch)
        for access in batch.to_accesses():
            b2.append_access(access)
    assert b1.flushes == b2.flushes
    assert b1.events_total == b2.events_total
    assert _stream(f1, b1).tobytes() == _stream(f2, b2).tobytes()


def test_to_records_matches_buffer_contents():
    batch = _batch(21, seed=6)
    buf, flushed = _recording_buffer(capacity=64)
    buf.append_access_batch(batch)
    assert _stream(flushed, buf).tobytes() == batch.to_records().tobytes()
