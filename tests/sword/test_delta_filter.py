"""Delta preconditioning filter: roundtrips, framed traces, mixed versions."""

import json
import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.common.config import SwordConfig
from repro.common.errors import CodecError
from repro.common.events import EVENT_BYTES, EVENT_DTYPE, Access, accesses_to_records
from repro.faults.harness import collect_trace
from repro.harness.tools import SwordDriver
from repro.sword.compression import by_id, filters
from repro.sword.reader import ThreadTraceReader, TraceDir
from repro.sword.traceformat import log_name, pack_block_header, pack_frame
from repro.workloads import REGISTRY

WORKLOAD = "figure5-truedep"


def _records(n, seed=0):
    rng = np.random.default_rng(seed)
    return accesses_to_records(
        Access(
            addr=int(a),
            size=8,
            count=1,
            stride=0,
            is_write=bool(i % 2),
            is_atomic=False,
            pc=0x4000 + i % 11,
        )
        for i, a in enumerate(rng.integers(0, 2**48, size=n))
    )


class TestFilterCodec:
    def test_roundtrip_on_trace_records(self):
        raw = _records(400).tobytes()
        enc = filters.encode(filters.FILTER_DELTA, raw)
        assert len(enc) == len(raw)
        assert enc != raw
        assert filters.decode(filters.FILTER_DELTA, enc) == raw

    def test_none_is_identity(self):
        raw = _records(16).tobytes()
        assert filters.encode(filters.FILTER_NONE, raw) == raw
        assert filters.decode(filters.FILTER_NONE, raw) == raw

    def test_empty(self):
        assert filters.encode(filters.FILTER_DELTA, b"") == b""
        assert filters.decode(filters.FILTER_DELTA, b"") == b""

    def test_monotone_addresses_become_constant_deltas(self):
        rec = np.zeros(64, dtype=EVENT_DTYPE)
        rec["addr"] = np.arange(0x1000, 0x1000 + 64 * 8, 8, dtype=np.uint64)
        rec["pc"] = 0x42
        enc = np.frombuffer(
            filters.encode(filters.FILTER_DELTA, rec.tobytes()), dtype=EVENT_DTYPE
        )
        assert set(enc["addr"][1:]) == {8}  # the arithmetic progression
        assert set(enc["pc"][1:]) == {0}  # the repeated site

    def test_unknown_filter_rejected(self):
        with pytest.raises(CodecError):
            filters.encode(99, b"")
        with pytest.raises(CodecError):
            filters.decode(99, b"")

    def test_misaligned_length_rejected(self):
        with pytest.raises(CodecError):
            filters.encode(filters.FILTER_DELTA, b"x" * (EVENT_BYTES + 1))
        with pytest.raises(CodecError):
            filters.decode(filters.FILTER_DELTA, b"x" * (EVENT_BYTES - 1))


@settings(max_examples=50, deadline=None)
@given(n=st.integers(0, 300), seed=st.integers(0, 2**16))
def test_property_filter_roundtrip(n, seed):
    raw = _records(n, seed=seed).tobytes()
    assert filters.decode(
        filters.FILTER_DELTA, filters.encode(filters.FILTER_DELTA, raw)
    ) == raw


def _blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


@pytest.fixture
def tmp_traces():
    paths = []

    def make(prefix="trace-"):
        path = tempfile.mkdtemp(prefix=prefix)
        paths.append(path)
        return path

    yield make
    for path in paths:
        shutil.rmtree(path, ignore_errors=True)


class TestFilteredTraces:
    def test_filtered_trace_reads_back_identically(self, tmp_traces):
        plain_dir, filt_dir = tmp_traces(), tmp_traces()
        collect_trace(WORKLOAD, plain_dir, nthreads=2, buffer_events=64)
        collect_trace(
            WORKLOAD, filt_dir, nthreads=2, buffer_events=64, delta_filter=True
        )
        plain, filt = TraceDir(plain_dir), TraceDir(filt_dir)
        assert plain.manifest["delta_filter"] is False
        assert filt.manifest["delta_filter"] is True
        for gid in plain.thread_gids:
            with plain.reader(gid) as a, filt.reader(gid) as b:
                assert a.uncompressed_bytes == b.uncompressed_bytes
                assert (
                    a.read_range(0, a.uncompressed_bytes).tobytes()
                    == b.read_range(0, b.uncompressed_bytes).tobytes()
                )
        assert _blob(api.analyze(filt).races) == _blob(api.analyze(plain).races)

    def test_driver_reports_filter_savings(self):
        workload = REGISTRY.get(WORKLOAD)
        result = SwordDriver().run(
            workload,
            nthreads=2,
            seed=0,
            sword_config=SwordConfig(delta_filter=True, buffer_events=128),
        )
        assert "filter_bytes_saved" in result.stats
        assert len(result.races) >= 1

    def test_mixed_version_dir_analyzes_in_both_modes(self, tmp_traces):
        """One log mixing v1 blocks, plain v2 frames, and filtered frames."""
        trace = tmp_traces()
        collect_trace(
            WORKLOAD, trace, nthreads=2, buffer_events=64, delta_filter=True
        )
        gold = _blob(api.analyze(TraceDir(trace)).races)
        gid = TraceDir(trace).thread_gids[0]
        _downgrade_blocks(Path(trace), gid)
        for mode in ("strict", "salvage"):
            result = api.analyze(trace, integrity=mode)
            assert _blob(result.races) == gold
        report = api.analyze(trace, integrity="salvage").integrity
        assert report is not None and not report.thread(gid).errors


def _downgrade_blocks(trace: Path, gid: int) -> None:
    """Rewrite one thread log, alternating block encodings per index:
    v1 (no checksums), v2 unfiltered, v2 delta-filtered."""
    with ThreadTraceReader(trace, gid) as reader:
        blocks = [
            (ref, reader._block_bytes(i)) for i, ref in enumerate(reader._blocks)
        ]
    assert len(blocks) >= 3, "need several blocks to mix encodings"
    out = bytearray()
    for i, (ref, data) in enumerate(blocks):
        codec = by_id(ref.codec_id)
        kind = i % 3
        if kind == 0:  # legacy v1 block
            payload = codec.compress(data)
            out += pack_block_header(
                ref.uncompressed_offset, len(payload), len(data), ref.codec_id
            )
            out += payload
        elif kind == 1:  # v2 frame, no filter
            payload = codec.compress(data)
            out += pack_frame(
                ref.uncompressed_offset, payload, len(data), ref.codec_id
            )
        else:  # v2 frame, delta-filtered
            payload = codec.compress(filters.encode(filters.FILTER_DELTA, data))
            out += pack_frame(
                ref.uncompressed_offset,
                payload,
                len(data),
                ref.codec_id,
                filter_id=filters.FILTER_DELTA,
            )
    (trace / log_name(gid)).write_bytes(bytes(out))
