"""Salvage-mode analysis: the kill-anywhere guarantee.

Property under test (the durability headline): for ANY fault point in a
trace, salvage analysis completes — no crash — and its race set is a
subset of the clean run's.  Plus the unit-level behaviours: CRC-mismatch
truncation, torn/duplicated/deleted meta records, missing run-wide
files, and v1 backward compatibility.
"""

import json
import shutil
import warnings

import pytest

import repro.sword.reader as reader_mod
from repro import api
from repro.common.errors import TraceFormatError
from repro.faults.harness import collect_trace, frame_kill_points, kill_sweep
from repro.sword import IntegrityReport, TraceDir
from repro.sword.traceformat import (
    BLOCK_HEADER_BYTES,
    COMMIT_TRAILER_BYTES,
    FRAME_HEADER_BYTES,
    FRAME_MAGIC,
    MANIFEST_NAME,
    MUTEXSETS_NAME,
    REGIONS_JOURNAL_NAME,
    REGIONS_NAME,
    log_name,
    meta_name,
    pack_block_header,
    unpack_frame_header,
)

WORKLOAD = "antidep1-orig-yes"


@pytest.fixture
def clean_trace(tmp_path):
    trace = tmp_path / "clean"
    collect_trace(WORKLOAD, trace, nthreads=2, seed=0, buffer_events=64)
    return trace


def _salvage(trace_dir):
    return api.analyze(trace_dir, integrity="salvage")


# -- the property test ---------------------------------------------------------


def test_kill_point_sweep_subset_property():
    """Truncate at every enumerated kill point; salvage must always
    complete with a subset of the clean race set (and be byte-identical
    at the clean end-of-file point)."""
    result = kill_sweep(WORKLOAD, nthreads=2, seed=0, buffer_events=64)
    assert result.points, "sweep enumerated no kill points"
    assert result.clean_races >= 1, "workload must be racy for a real check"
    failures = [p.to_json() for p in result.failures]
    assert result.ok, f"kill-anywhere violated: {failures}"
    kinds = {p.point.kind for p in result.points}
    assert {"mid-header", "mid-payload", "pre-commit", "boundary",
            "clean-end"} <= kinds


def test_sweep_reports_loss_where_expected():
    result = kill_sweep(WORKLOAD, nthreads=2, seed=0, buffer_events=64)
    for p in result.points:
        if p.point.kind == "clean-end":
            assert p.identical
        else:
            assert p.integrity, "lossy point must carry an integrity report"
            assert not p.integrity["clean"]
            assert p.integrity["races_possibly_missed"]


# -- unit-level salvage behaviours ---------------------------------------------


def test_salvage_on_clean_trace_is_byte_identical(clean_trace):
    strict = api.analyze(clean_trace)
    salvaged = _salvage(clean_trace)
    assert salvaged.races.to_json() == strict.races.to_json()
    assert salvaged.integrity is not None
    assert salvaged.integrity.clean
    assert not salvaged.integrity.races_possibly_missed
    assert strict.integrity is None


def test_payload_crc_mismatch_truncates_in_salvage(clean_trace):
    trace = TraceDir(clean_trace)
    gid = trace.thread_gids[0]
    log_path = clean_trace / log_name(gid)
    data = bytearray(log_path.read_bytes())
    header = unpack_frame_header(bytes(data[:FRAME_HEADER_BYTES]))
    data[FRAME_HEADER_BYTES + 2] ^= 0xFF  # corrupt the first payload
    log_path.write_bytes(bytes(data))
    # Strict verifies payload CRCs lazily, at read time.
    reader = TraceDir(clean_trace).reader(gid)
    try:
        with pytest.raises(TraceFormatError, match="payload CRC"):
            for row in reader.rows:
                reader.read_chunk(row)
    finally:
        reader.close()
    result = _salvage(clean_trace)
    thread = result.integrity.threads[gid]
    assert thread.chunks_dropped >= 1
    assert thread.chunks_recovered == 0  # first frame bad -> nothing before it
    assert any("payload CRC mismatch" in e for e in thread.errors)
    assert header.compressed_size > 0


def test_strict_error_names_thread_block_offset(clean_trace):
    trace = TraceDir(clean_trace)
    gid = trace.thread_gids[-1]
    log_path = clean_trace / log_name(gid)
    log_path.write_bytes(log_path.read_bytes()[:-3])  # torn commit marker
    with pytest.raises(TraceFormatError, match=rf"thread {gid}, block \d+ at byte \d+"):
        trace.reader(gid)


def test_torn_meta_record_dropped_individually(clean_trace):
    gid = TraceDir(clean_trace).thread_gids[0]
    meta_path = clean_trace / meta_name(gid)
    text = meta_path.read_text()
    n_rows = len(
        [l for l in text.splitlines() if l.strip() and not l.startswith("#")]
    )
    meta_path.write_text(text + "1 - 0 0 2 1 999\n")  # torn tail row
    result = _salvage(clean_trace)
    thread = result.integrity.threads[gid]
    assert thread.rows_dropped == 1
    assert thread.rows_recovered == n_rows


def test_duplicate_meta_row_deduplicated(clean_trace):
    gid = TraceDir(clean_trace).thread_gids[0]
    meta_path = clean_trace / meta_name(gid)
    lines = meta_path.read_text().splitlines(keepends=True)
    row_lines = [l for l in lines if l.strip() and not l.startswith("#")]
    lines.append(row_lines[0])  # duplicate the first data row
    meta_path.write_text("".join(lines))
    result = _salvage(clean_trace)
    thread = result.integrity.threads[gid]
    assert thread.rows_dropped == 1
    assert any("duplicate row" in e for e in thread.errors)


def test_deleted_middle_meta_record_loses_only_that_record(clean_trace):
    strict_races = api.analyze(clean_trace).races.pc_pairs()
    gid = TraceDir(clean_trace).thread_gids[0]
    meta_path = clean_trace / meta_name(gid)
    lines = meta_path.read_text().splitlines(keepends=True)
    data_idx = [
        i for i, l in enumerate(lines) if l.strip() and not l.startswith("#")
    ]
    assert len(data_idx) >= 2, "need multiple rows to delete a middle one"
    del lines[data_idx[len(data_idx) // 2]]
    meta_path.write_text("".join(lines))
    result = _salvage(clean_trace)
    thread = result.integrity.threads[gid]
    # Durable rows validate independently: the remaining rows all parse.
    assert thread.rows_dropped == 0
    assert result.races.pc_pairs() <= strict_races


def test_rows_past_truncation_reconciled_away(clean_trace):
    gid = TraceDir(clean_trace).thread_gids[0]
    log_path = clean_trace / log_name(gid)
    # Keep only the first frame's bytes.
    data = log_path.read_bytes()
    header = unpack_frame_header(data[:FRAME_HEADER_BYTES])
    first_end = (
        FRAME_HEADER_BYTES + header.compressed_size + COMMIT_TRAILER_BYTES
    )
    log_path.write_bytes(data[:first_end])
    result = _salvage(clean_trace)
    thread = result.integrity.threads[gid]
    assert thread.chunks_recovered == 1
    assert thread.bytes_recovered == header.uncompressed_size
    # Every surviving row fits inside the recovered extent.
    reader = TraceDir(clean_trace, integrity="salvage").reader(gid)
    try:
        for row in reader.rows:
            assert row.data_begin + row.size <= header.uncompressed_size
    finally:
        reader.close()


def test_missing_manifest_salvaged_from_disk(clean_trace):
    (clean_trace / MANIFEST_NAME).unlink()
    with pytest.raises(TraceFormatError):
        TraceDir(clean_trace)  # strict still fails fast
    result = _salvage(clean_trace)
    assert MANIFEST_NAME in result.integrity.missing_files
    trace = TraceDir(clean_trace, integrity="salvage")
    assert trace.thread_gids  # reconstructed by globbing thread logs


def test_missing_regions_recovered_from_journal(clean_trace):
    assert (clean_trace / REGIONS_JOURNAL_NAME).exists()  # durable trace
    strict_races = api.analyze(clean_trace).races.pc_pairs()
    (clean_trace / REGIONS_NAME).unlink()
    result = _salvage(clean_trace)
    assert REGIONS_NAME in result.integrity.missing_files
    assert any(REGIONS_JOURNAL_NAME in n for n in result.integrity.notes)
    # The journal holds the full fork structure: nothing is lost.
    assert result.races.pc_pairs() == strict_races


def test_missing_regions_and_journal_skips_intervals(clean_trace):
    (clean_trace / REGIONS_NAME).unlink()
    (clean_trace / REGIONS_JOURNAL_NAME).unlink()
    result = _salvage(clean_trace)
    assert result.integrity.intervals_skipped > 0
    assert result.races.pc_pairs() == set()  # under-report, never invent


def test_missing_mutexsets_under_reports(clean_trace):
    strict_races = api.analyze(clean_trace).races.pc_pairs()
    (clean_trace / MUTEXSETS_NAME).unlink()
    result = _salvage(clean_trace)
    assert MUTEXSETS_NAME in result.integrity.missing_files
    assert result.races.pc_pairs() <= strict_races


def test_integrity_report_json_round_trip(clean_trace):
    log_path = clean_trace / log_name(TraceDir(clean_trace).thread_gids[0])
    log_path.write_bytes(log_path.read_bytes()[:-5])
    report = _salvage(clean_trace).integrity
    clone = IntegrityReport.from_json(json.loads(json.dumps(report.to_json())))
    assert clone.to_json() == report.to_json()
    assert not clone.clean
    assert "salvaged with loss" in clone.summary()


def test_analysis_result_json_carries_integrity_key(clean_trace):
    strict_payload = api.analyze(clean_trace).to_json()
    assert "integrity" not in strict_payload
    salvage_payload = _salvage(clean_trace).to_json()
    assert salvage_payload["integrity"]["mode"] == "salvage"
    assert salvage_payload["integrity"]["clean"] is True


# -- v1 backward compatibility -------------------------------------------------


def _downgrade_to_v1(trace_dir):
    """Rewrite every v2 frame as an unchecksummed v1 block."""
    for log_path in trace_dir.glob("thread_*.log"):
        data = log_path.read_bytes()
        out = bytearray()
        pos = 0
        while pos < len(data):
            assert data[pos : pos + 4] == FRAME_MAGIC
            header = unpack_frame_header(data[pos : pos + FRAME_HEADER_BYTES])
            payload = data[
                pos + FRAME_HEADER_BYTES :
                pos + FRAME_HEADER_BYTES + header.compressed_size
            ]
            out += pack_block_header(
                header.uncompressed_offset,
                header.compressed_size,
                header.uncompressed_size,
                header.codec_id,
            )
            out += payload
            pos += (
                FRAME_HEADER_BYTES
                + header.compressed_size
                + COMMIT_TRAILER_BYTES
            )
        log_path.write_bytes(bytes(out))
    manifest_path = trace_dir / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = 1
    manifest_path.write_text(json.dumps(manifest))


def test_v1_trace_reads_with_one_warning(clean_trace, tmp_path):
    strict_races = api.analyze(clean_trace).races.to_json()
    v1 = tmp_path / "v1"
    shutil.copytree(clean_trace, v1)
    _downgrade_to_v1(v1)
    reader_mod._v1_warned = False
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = api.analyze(v1)
            again = api.analyze(v1)
        v1_warnings = [
            w for w in caught if "v1" in str(w.message)
        ]
        assert len(v1_warnings) == 1  # warn once per process, not per read
    finally:
        reader_mod._v1_warned = False
    # Same analysis result through the compatibility path.
    assert result.races.to_json() == strict_races
    assert again.races.to_json() == strict_races


def test_v1_block_header_is_24_bytes():
    assert BLOCK_HEADER_BYTES == 24  # layout frozen for compatibility
