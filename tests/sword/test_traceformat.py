"""Block framing (v1 + v2 CRC frames) and Table-I metadata rows."""

import pytest

from repro.common.errors import TraceFormatError
from repro.sword.traceformat import (
    BLOCK_HEADER_BYTES,
    COMMIT_TRAILER_BYTES,
    FRAME_HEADER_BYTES,
    FRAME_MAGIC,
    TRACE_FORMAT_VERSION,
    MetaRow,
    check_commit_trailer,
    crc32,
    format_meta_file,
    journal_line,
    pack_block_header,
    pack_frame,
    parse_journal,
    parse_meta_file,
    parse_meta_file_salvage,
    unpack_block_header,
    unpack_frame_header,
)


class TestBlockHeaders:
    def test_roundtrip(self):
        raw = pack_block_header(12345, 678, 91011, 2)
        header = unpack_block_header(raw)
        assert header.uncompressed_offset == 12345
        assert header.compressed_size == 678
        assert header.uncompressed_size == 91011
        assert header.codec_id == 2

    def test_fixed_size(self):
        assert len(pack_block_header(0, 0, 0, 0)) == BLOCK_HEADER_BYTES == 24

    def test_bad_magic(self):
        raw = bytearray(pack_block_header(1, 2, 3, 4))
        raw[0] = ord("X")
        with pytest.raises(TraceFormatError):
            unpack_block_header(bytes(raw))

    def test_truncated(self):
        with pytest.raises(TraceFormatError):
            unpack_block_header(b"SWBL")


class TestMetaRows:
    def test_table1_column_roundtrip(self):
        row = MetaRow(pid=1, ppid=-1, bid=0, offset=0, span=24, level=1,
                      data_begin=0, size=50_000)
        parsed = MetaRow.parse(row.format())
        assert parsed == row

    def test_table1_example_rows(self):
        """The paper's Table-I example rows parse as printed."""
        text = "\n".join([
            "# pid ppid bid offset span level data_begin size",
            "0 - 0 0 24 1 0 50000",
            "0 - 1 0 24 1 50000 75000",
            "1 - 0 0 24 1 75000 10000",
        ])
        rows = parse_meta_file(text)
        assert len(rows) == 3
        assert rows[0].span == 24
        assert rows[1].bid == 1
        assert rows[1].data_begin == 50_000
        assert rows[2].pid == 1
        assert all(r.ppid == -1 for r in rows)

    def test_nested_ppid_kept(self):
        row = MetaRow(pid=7, ppid=3, bid=2, offset=1, span=2, level=2,
                      data_begin=400, size=80)
        assert MetaRow.parse(row.format()).ppid == 3

    def test_malformed_rows_rejected(self):
        with pytest.raises(TraceFormatError):
            MetaRow.parse("1 2 3")
        with pytest.raises(TraceFormatError):
            MetaRow.parse("a b c d e f g h")

    def test_file_format_skips_comments_and_blanks(self):
        rows = [
            MetaRow(pid=i, ppid=-1, bid=0, offset=i, span=4, level=1,
                    data_begin=i * 40, size=40)
            for i in range(3)
        ]
        text = format_meta_file(rows) + "\n# trailing comment\n\n"
        assert parse_meta_file(text) == rows


class TestFrameV2:
    PAYLOAD = b"compressed-bytes-go-here"

    def test_format_version_bumped(self):
        assert TRACE_FORMAT_VERSION == 2

    def test_roundtrip(self):
        frame = pack_frame(777, self.PAYLOAD, 4096, 2)
        assert len(frame) == (
            FRAME_HEADER_BYTES + len(self.PAYLOAD) + COMMIT_TRAILER_BYTES
        )
        header = unpack_frame_header(frame)
        assert header.uncompressed_offset == 777
        assert header.compressed_size == len(self.PAYLOAD)
        assert header.uncompressed_size == 4096
        assert header.codec_id == 2
        assert header.payload_crc == crc32(self.PAYLOAD)
        assert header.version == 2
        assert header.header_bytes == FRAME_HEADER_BYTES == 32
        assert header.trailer_bytes == COMMIT_TRAILER_BYTES == 8

    def test_commit_trailer_seals_the_frame(self):
        frame = pack_frame(0, self.PAYLOAD, 100, 1)
        trailer = frame[FRAME_HEADER_BYTES + len(self.PAYLOAD):]
        assert check_commit_trailer(trailer, crc32(self.PAYLOAD))
        assert not check_commit_trailer(trailer, crc32(b"other payload"))
        assert not check_commit_trailer(trailer[:-1], crc32(self.PAYLOAD))

    def test_header_crc_detects_any_header_flip(self):
        frame = bytearray(pack_frame(777, self.PAYLOAD, 4096, 2))
        for byte in range(4, 28):  # every non-magic, CRC-covered byte
            poked = bytearray(frame)
            poked[byte] ^= 0x01
            with pytest.raises(TraceFormatError, match="header CRC"):
                unpack_frame_header(bytes(poked))

    def test_bad_magic_and_truncation(self):
        frame = bytearray(pack_frame(1, self.PAYLOAD, 10, 1))
        frame[0] = ord("X")
        with pytest.raises(TraceFormatError, match="magic"):
            unpack_frame_header(bytes(frame))
        with pytest.raises(TraceFormatError, match="truncated"):
            unpack_frame_header(FRAME_MAGIC + b"\x00" * 8)

    def test_v1_headers_have_no_checksum(self):
        header = unpack_block_header(pack_block_header(5, 6, 7, 1))
        assert header.version == 1
        assert header.payload_crc is None
        assert header.trailer_bytes == 0


class TestDurableMetaRows:
    ROW = MetaRow(pid=1, ppid=-1, bid=3, offset=0, span=8, level=1,
                  data_begin=1024, size=2048)

    def test_durable_row_roundtrip(self):
        line = self.ROW.format_durable()
        assert line.endswith(f"*{crc32(self.ROW.format().encode()):08x}")
        assert MetaRow.parse(line) == self.ROW

    def test_durable_row_crc_mismatch_rejected(self):
        line = self.ROW.format_durable()
        torn = line.replace("2048", "2049", 1)  # flip a digit, keep the CRC
        with pytest.raises(TraceFormatError, match="CRC mismatch"):
            MetaRow.parse(torn)

    def test_salvage_parse_drops_only_bad_rows(self):
        good = [self.ROW.format_durable(),
                MetaRow(pid=2, ppid=-1, bid=0, offset=1, span=8, level=1,
                        data_begin=0, size=64).format_durable()]
        text = "\n".join([good[0], "1 - 0 0 8 1 torn", good[1]])
        rows, dropped = parse_meta_file_salvage(text)
        assert dropped == 1
        assert [r.pid for r in rows] == [1, 2]

    def test_durable_file_format(self):
        text = format_meta_file([self.ROW], durable=True)
        assert "*" in text.splitlines()[1]
        assert parse_meta_file(text) == [self.ROW]


class TestJournal:
    def test_journal_line_roundtrip(self):
        line = journal_line({"pid": 4, "span": 8})
        assert line.endswith("\n")
        assert parse_journal(line) == [{"pid": 4, "span": 8}]

    def test_torn_line_strict_vs_salvage(self):
        good = journal_line({"pid": 1})
        torn = good[: len(good) // 2] + "\n"
        text = good + torn + journal_line({"pid": 2})
        with pytest.raises(TraceFormatError, match="journal"):
            parse_journal(text)
        assert parse_journal(text, salvage=True) == [{"pid": 1}, {"pid": 2}]

    def test_crc_covers_the_body(self):
        line = journal_line({"pid": 1})
        tampered = line.replace('"pid": 1', '"pid": 9')
        with pytest.raises(TraceFormatError):
            parse_journal(tampered)

    def test_non_object_payload_rejected(self):
        body = "[1, 2, 3]"
        line = f"{body} *{crc32(body.encode()):08x}\n"
        with pytest.raises(TraceFormatError):
            parse_journal(line)
        assert parse_journal(line, salvage=True) == []
