"""Block framing and Table-I metadata rows."""

import pytest

from repro.common.errors import TraceFormatError
from repro.sword.traceformat import (
    BLOCK_HEADER_BYTES,
    MetaRow,
    format_meta_file,
    pack_block_header,
    parse_meta_file,
    unpack_block_header,
)


class TestBlockHeaders:
    def test_roundtrip(self):
        raw = pack_block_header(12345, 678, 91011, 2)
        header = unpack_block_header(raw)
        assert header.uncompressed_offset == 12345
        assert header.compressed_size == 678
        assert header.uncompressed_size == 91011
        assert header.codec_id == 2

    def test_fixed_size(self):
        assert len(pack_block_header(0, 0, 0, 0)) == BLOCK_HEADER_BYTES == 24

    def test_bad_magic(self):
        raw = bytearray(pack_block_header(1, 2, 3, 4))
        raw[0] = ord("X")
        with pytest.raises(TraceFormatError):
            unpack_block_header(bytes(raw))

    def test_truncated(self):
        with pytest.raises(TraceFormatError):
            unpack_block_header(b"SWBL")


class TestMetaRows:
    def test_table1_column_roundtrip(self):
        row = MetaRow(pid=1, ppid=-1, bid=0, offset=0, span=24, level=1,
                      data_begin=0, size=50_000)
        parsed = MetaRow.parse(row.format())
        assert parsed == row

    def test_table1_example_rows(self):
        """The paper's Table-I example rows parse as printed."""
        text = "\n".join([
            "# pid ppid bid offset span level data_begin size",
            "0 - 0 0 24 1 0 50000",
            "0 - 1 0 24 1 50000 75000",
            "1 - 0 0 24 1 75000 10000",
        ])
        rows = parse_meta_file(text)
        assert len(rows) == 3
        assert rows[0].span == 24
        assert rows[1].bid == 1
        assert rows[1].data_begin == 50_000
        assert rows[2].pid == 1
        assert all(r.ppid == -1 for r in rows)

    def test_nested_ppid_kept(self):
        row = MetaRow(pid=7, ppid=3, bid=2, offset=1, span=2, level=2,
                      data_begin=400, size=80)
        assert MetaRow.parse(row.format()).ppid == 3

    def test_malformed_rows_rejected(self):
        with pytest.raises(TraceFormatError):
            MetaRow.parse("1 2 3")
        with pytest.raises(TraceFormatError):
            MetaRow.parse("a b c d e f g h")

    def test_file_format_skips_comments_and_blanks(self):
        rows = [
            MetaRow(pid=i, ppid=-1, bid=0, offset=i, span=4, level=1,
                    data_begin=i * 40, size=40)
            for i in range(3)
        ]
        text = format_meta_file(rows) + "\n# trailing comment\n\n"
        assert parse_meta_file(text) == rows
