"""Tool drivers: uniform results, OOM handling, memory metrics."""

import pytest

from repro.common.config import NodeConfig
from repro.harness.tools import TOOL_NAMES, driver
from repro.workloads import REGISTRY


@pytest.fixture(scope="module")
def hpccg():
    return REGISTRY.get("hpccg")


def test_driver_factory():
    for name in TOOL_NAMES:
        assert driver(name).name == name
    with pytest.raises(ValueError):
        driver("tsan")


def test_baseline_measures_without_detecting(hpccg):
    res = driver("baseline").run(hpccg, nthreads=2, seed=0)
    assert res.tool == "baseline"
    assert res.race_count == 0
    assert res.dynamic_seconds > 0
    assert res.app_bytes > 0
    assert res.tool_bytes == 0


def test_archer_reports_races_and_memory(hpccg):
    res = driver("archer").run(hpccg, nthreads=2, seed=0)
    assert res.race_count == 1
    assert res.tool_bytes > 4 * res.app_bytes  # shadow plus misc
    assert res.stats["accesses"] > 0


def test_sword_reports_races_and_phases(hpccg):
    res = driver("sword").run(hpccg, nthreads=2, seed=0, mt_workers=2)
    assert res.race_count == 1
    assert res.offline_seconds > 0
    assert res.offline_mt_seconds > 0
    assert res.trace_bytes > 0
    assert res.total_seconds >= res.dynamic_seconds
    # Bounded overhead: ~3.3 MB per thread.
    assert res.tool_bytes == pytest.approx(2 * 3.3 * 2**20, rel=0.05)


def test_sword_memory_independent_of_app(hpccg):
    small = driver("sword").run(hpccg, nthreads=2, seed=0, n=128)
    large = driver("sword").run(hpccg, nthreads=2, seed=0, n=2048)
    assert small.tool_bytes == large.tool_bytes
    assert large.app_bytes > small.app_bytes


def test_oom_result_is_reported_not_raised():
    amg = REGISTRY.get("amg2013_40")
    res = driver("archer").run(
        amg, nthreads=2, seed=0, node=NodeConfig(), sweeps=2
    )
    assert res.oom
    assert res.races is None
    assert res.race_count == 0


def test_sword_survives_the_same_node(hpccg):
    amg = REGISTRY.get("amg2013_40")
    res = driver("sword").run(
        amg, nthreads=2, seed=0, node=NodeConfig(), sweeps=2
    )
    assert not res.oom
    assert res.race_count > 0


def test_keep_trace(tmp_path, hpccg):
    trace = tmp_path / "trace"
    res = driver("sword").run(
        hpccg, nthreads=2, seed=0, trace_dir=str(trace), keep_trace=True
    )
    assert res.race_count == 1
    assert (trace / "manifest.json").exists()


def test_run_offline_false_skips_analysis(hpccg):
    res = driver("sword").run(hpccg, nthreads=2, seed=0, run_offline=False)
    assert res.races is None
    assert res.offline_seconds == 0
