"""Experiment modules at test scale: every paper shape must hold."""

import pytest

import repro.harness.experiments as E
from repro.common.config import NodeConfig


def _hpc_params(w):
    if w.name.startswith("amg"):
        return {"sweeps": 5}
    if w.name == "lulesh":
        return {"steps": 5}
    return {}


class TestE1DataRaceBench:
    def test_key_rows(self):
        table = E.drb.run(
            nthreads=4,
            include=[
                "nowait-orig-yes",
                "privatemissing-orig-yes",
                "plusplus-orig-yes",
                "indirectaccess1-orig-yes",
                "critical-orig-no",
                "atomic-orig-no",
            ],
        )
        rows = {row[0]: row for row in table.rows}
        # ARCHER misses the eviction-prone races; SWORD finds them.
        assert rows["nowait-orig-yes"][3] == 0
        assert rows["nowait-orig-yes"][4] == 1
        assert rows["privatemissing-orig-yes"][3] == 0
        assert rows["privatemissing-orig-yes"][4] == 2
        # Both tools see the undocumented plusplus extra.
        assert rows["plusplus-orig-yes"][3] == 2
        assert rows["plusplus-orig-yes"][4] == 2
        # Unexecuted-path race: everyone misses.
        assert rows["indirectaccess1-orig-yes"][3] == 0
        assert rows["indirectaccess1-orig-yes"][4] == 0
        # No false alarms.
        assert rows["critical-orig-no"][3] == 0
        assert rows["critical-orig-no"][4] == 0
        assert rows["atomic-orig-no"][4] == 0


class TestE2TableII:
    def test_sword_superset_and_new_races(self):
        table = E.ompscr_races.run(
            nthreads=4,
            include=[
                "c_md",
                "c_testPath",
                "cpp_qsomp1",
                "c_mandel",
                "c_pi",
                "c_jacobi01",
            ],
        )
        rows = {row[0]: row for row in table.rows}
        for name in ("c_md", "c_testPath", "cpp_qsomp1"):
            assert rows[name][5] > 0, f"{name}: expected sword-only races"
            assert rows[name][4] >= rows[name][2]
        # Matching detections where no mechanism is in play.
        assert rows["c_mandel"][2] == rows[name := "c_mandel"][4] == 2
        # Race-free controls stay silent for all three configurations.
        for name in ("c_pi", "c_jacobi01"):
            assert rows[name][2] == rows[name][3] == rows[name][4] == 0


class TestE3Figure6:
    def test_geomean_series_shapes(self):
        runtime_fig, memory_fig = E.ompscr_overhead.run(
            thread_counts=(2, 4), include=["c_pi", "c_jacobi01", "c_mandel"]
        )
        for fig in (runtime_fig, memory_fig):
            assert {s.label for s in fig.series} == {
                "baseline", "archer", "archer-low", "sword",
            }
            for s in fig.series:
                assert len(s.points) == 2
        # Every tool costs at least the baseline in memory.
        base = memory_fig.get("baseline").ys()
        for label in ("archer", "archer-low", "sword"):
            ys = memory_fig.get(label).ys()
            assert all(y >= b for y, b in zip(ys, base))


class TestE4TableIII:
    def test_columns_present(self):
        table = E.ompscr_offline.run(
            nthreads=2, include=["c_pi", "c_loopA.badSolution"], mt_workers=2
        )
        assert len(table.rows) == 2
        assert list(table.columns)[:3] == ["benchmark", "archer DA", "archer-low DA"]


class TestE5TableIV:
    def test_full_paper_shape(self):
        table = E.hpc_races.run(nthreads=4, params_for=_hpc_params)
        rows = {row[0]: row[1:] for row in table.rows}
        assert rows["minife"] == (0, 0, 0)
        assert rows["hpccg"] == (1, 1, 1)
        assert rows["lulesh"] == (0, 0, 0)
        for size in (10, 20, 30):
            assert rows[f"amg2013_{size}"] == (4, 4, 14)
        assert rows["amg2013_40"] == ("OOM", "OOM", 14)


class TestE6Figure7:
    def test_memory_overhead_shapes(self):
        figs = E.hpc_overhead.run(
            benchmarks=("hpccg",), thread_counts=(2, 4), params_for=_hpc_params
        )
        slow_fig, mem_fig = figs["hpccg"]
        # ARCHER memory is flat-ish in threads; SWORD memory grows linearly
        # with the team (N x 3.3 MB) but stays tiny.
        sword = mem_fig.get("sword").ys()
        assert sword[1] == pytest.approx(2 * sword[0], rel=0.01)
        archer = mem_fig.get("archer").ys()
        assert archer[0] > sword[0]
        assert {s.label for s in slow_fig.series} == {
            "archer", "archer-low", "sword", "sword-total",
        }


class TestE7Figure8:
    def test_oom_crossover(self):
        mem_fig, rt_fig, oom = E.amg_scaling.run(
            sizes=(10, 40), nthreads=2, sweeps=3
        )
        status = {row[0]: row[1:] for row in oom.rows}
        assert status[10] == ("ok", "ok", "ok", "ok")
        assert status[40] == ("ok", "OOM", "OOM", "ok")
        # SWORD's total memory tracks the baseline (app dominates).
        base = dict(mem_fig.get("baseline").points)
        sword = dict(mem_fig.get("sword").points)
        assert sword[40] < base[40] * 1.1
        # ARCHER at the surviving size is several times the baseline.
        archer = dict(mem_fig.get("archer").points)
        assert archer[10] > 4 * base[10]


class TestE8Figure1:
    def test_masking_flips_with_seed_sword_never(self):
        table = E.hb_masking.run(seeds=range(10))
        archer_counts = [row[1] for row in table.rows]
        sword_counts = [row[2] for row in table.rows]
        assert 0 in archer_counts, "some schedule must mask the race"
        assert any(c > 0 for c in archer_counts), "some schedule must catch it"
        assert all(c == 1 for c in sword_counts)


class TestE9Codecs:
    def test_all_codecs_compared(self):
        table = E.codec_compare.run(nparts=16, neighbors=2, repeats=1)
        names = table.column("codec")
        assert {"lzrle", "lz4", "snappy", "zlib"} <= set(names)
        for ratio in table.column("ratio"):
            assert float(ratio.rstrip("x")) > 0


class TestE10Examples:
    def test_eviction_demo(self):
        table = E.examples_demo.run_eviction(nthreads=4, seeds=(0, 1))
        for _seed, archer, evictions, sword in table.rows:
            assert evictions > 0
            assert sword >= 1
            assert archer <= sword

    def test_fig5_interval_trees(self):
        table, system_text = E.examples_demo.run_fig5(n=500)
        # Two threads, each with a handful of summarised nodes.
        assert len(table.rows) == 2
        for _tid, nodes, events, _height in table.rows:
            assert events > 200
            assert nodes <= 6  # summarisation collapsed the sweep
        assert "satisfiable: True" in system_text
