"""Schedule-space exploration driver."""

import pytest

from repro.common.config import NodeConfig
from repro.harness.explore import explore_schedules
from repro.workloads import REGISTRY


def test_sword_detection_is_seed_invariant():
    w = REGISTRY.get("plusplus-orig-yes")
    result = explore_schedules(w, "sword", seeds=range(4), nthreads=4)
    assert result.race_count == 2
    assert len(result.stable_races()) == 2
    assert result.flaky_races() == []


def test_archer_masking_shows_up_as_flaky():
    w = REGISTRY.get("figure1-masking")
    result = explore_schedules(w, "archer", seeds=range(12), nthreads=3)
    # The Figure-1 race is detected under some schedules only.
    assert result.race_count == 1
    (race,) = result.union.reports()
    rate = result.detection_rate(race.key)
    assert 0 < rate < 1, f"expected schedule-dependent detection, got {rate}"
    assert result.flaky_races() == result.union.reports()

    sword = explore_schedules(w, "sword", seeds=range(12), nthreads=3)
    assert len(sword.stable_races()) == 1


def test_union_across_seeds_never_shrinks():
    w = REGISTRY.get("c_mandel")
    few = explore_schedules(w, "sword", seeds=range(2), nthreads=4)
    more = explore_schedules(w, "sword", seeds=range(4), nthreads=4)
    assert few.union.pc_pairs() <= more.union.pc_pairs()


def test_oom_runs_recorded_not_raised():
    w = REGISTRY.get("amg2013_40")
    result = explore_schedules(
        w, "archer", seeds=range(2), nthreads=2, node=NodeConfig(), sweeps=2
    )
    assert result.ooms == [0, 1]
    assert result.race_count == 0
    assert result.detection_rate((0, 0)) == 0.0


def test_summary_renders():
    w = REGISTRY.get("nowait-orig-yes")
    result = explore_schedules(w, "sword", seeds=range(2), nthreads=4)
    text = result.summary()
    assert "nowait-orig-yes" in text
    assert "100%" in text
