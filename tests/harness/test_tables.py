"""Table/figure rendering and aggregation helpers."""

import math

import pytest

from repro.harness.tables import (
    Figure,
    Table,
    fmt_bytes,
    fmt_seconds,
    geomean,
)


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.0 KiB"
        assert fmt_bytes(3.3 * 1024 * 1024).startswith("3.3 MiB")
        assert "GiB" in fmt_bytes(32 * 1024**3)

    def test_fmt_seconds(self):
        assert fmt_seconds(5e-7) == "1 us" or "us" in fmt_seconds(5e-7)
        assert "ms" in fmt_seconds(0.05)
        assert fmt_seconds(2.5) == "2.50 s"
        assert "min" in fmt_seconds(600)


class TestGeomean:
    def test_basic(self):
        assert math.isclose(geomean([2, 8]), 4.0)
        assert math.isclose(geomean([5]), 5.0)

    def test_ignores_nonpositive(self):
        assert math.isclose(geomean([0, 4, 4]), 4.0)
        assert geomean([]) == 0.0
        assert geomean([0.0]) == 0.0


class TestTable:
    def test_render_alignment(self):
        t = Table("My Table", ["name", "value"])
        t.add("alpha", 1)
        t.add("b", 123456)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[2] and "value" in lines[2]
        assert "alpha" in text and "123456" in text

    def test_row_arity_checked(self):
        t = Table("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_column_extraction(self):
        t = Table("x", ["a", "b"])
        t.add(1, "p")
        t.add(2, "q")
        assert t.column("b") == ["p", "q"]
        with pytest.raises(ValueError):
            t.column("c")

    def test_notes_rendered(self):
        t = Table("x", ["a"])
        t.add(1)
        t.note("context matters")
        assert "note: context matters" in t.render()

    def test_empty_table_renders(self):
        t = Table("empty", ["col"])
        assert "empty" in t.render()


class TestFigure:
    def test_series_and_render(self):
        fig = Figure("F", "threads", "seconds")
        s1 = fig.new_series("archer")
        s2 = fig.new_series("sword")
        for x in (8, 16):
            s1.add(x, x * 1.0)
            s2.add(x, x * 0.5)
        text = fig.render()
        assert "archer" in text and "sword" in text
        assert "8" in text and "16" in text
        assert fig.get("archer").ys() == [8.0, 16.0]
        with pytest.raises(KeyError):
            fig.get("nope")

    def test_missing_points_render_as_dash(self):
        fig = Figure("F", "x", "y")
        a = fig.new_series("full")
        b = fig.new_series("partial")
        a.add(1, 1.0)
        a.add(2, 2.0)
        b.add(1, 1.0)  # no point at x=2 (e.g. OOM)
        lines = fig.render().splitlines()
        assert any("-" in line.split("|")[-1] for line in lines[4:])
