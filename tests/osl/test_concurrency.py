"""Barrier-interval concurrency judgment (the pid/ppid-aware OSL form)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.osl.concurrency import (
    IntervalPair,
    concurrent_intervals,
    make_interval_label,
    sequential_intervals,
    to_classic,
)
from repro.osl.labels import OSPair


def L(*levels):
    return make_interval_label(*levels)


class TestSameRegion:
    def test_same_interval_different_slots_concurrent(self):
        # Paper's R1: teammates inside one barrier interval.
        a = L((1, 0, 2, 4))
        b = L((1, 1, 2, 4))
        assert concurrent_intervals(a, b)

    def test_different_intervals_sequential(self):
        # Barrier-separated: cannot race even across threads.
        a = L((1, 0, 1, 4))
        b = L((1, 3, 2, 4))
        assert sequential_intervals(a, b)

    def test_same_slot_program_order(self):
        a = L((1, 2, 0, 4))
        b = L((1, 2, 5, 4))
        assert sequential_intervals(a, b)

    def test_identical_labels_sequential(self):
        a = L((1, 2, 3, 4))
        assert sequential_intervals(a, a)


class TestNested:
    def test_paper_r2_r3_sibling_nested_regions(self):
        """Fig. 2: nested regions forked by different teammates race."""
        a = L((1, 0, 0, 2), (2, 0, 0, 2))
        b = L((1, 1, 0, 2), (3, 1, 0, 2))
        assert concurrent_intervals(a, b)

    def test_nested_vs_parent_forking_thread(self):
        """Case 1: the forking thread is suspended during its child region."""
        parent = L((1, 0, 0, 2))
        child = L((1, 0, 0, 2), (2, 1, 0, 2))
        assert sequential_intervals(parent, child)

    def test_nested_vs_parent_teammate(self):
        """A teammate of the forking thread runs concurrently with the child."""
        teammate = L((1, 1, 0, 2))
        child = L((1, 0, 0, 2), (2, 1, 0, 2))
        assert concurrent_intervals(teammate, child)

    def test_nested_regions_forked_across_barrier(self):
        """Different fork intervals: the barrier serialises the regions."""
        a = L((1, 0, 0, 2), (2, 0, 0, 2))
        b = L((1, 1, 1, 2), (3, 0, 0, 2))
        assert sequential_intervals(a, b)

    def test_sibling_regions_same_forking_thread(self):
        """One thread forks region 2 then region 3: fork-join serialises."""
        a = L((1, 0, 0, 2), (2, 0, 0, 2))
        b = L((1, 0, 0, 2), (3, 1, 0, 2))
        assert sequential_intervals(a, b)

    def test_two_top_level_regions_sequential(self):
        """Successive top-level regions are serialised by the initial thread."""
        a = L((1, 0, 0, 4))
        b = L((2, 2, 0, 4))
        assert sequential_intervals(a, b)

    def test_parent_interval_after_child_fork_bid(self):
        """Parent interval in a *different* bid than the fork: barrier orders."""
        parent_later = L((1, 1, 5, 2))
        child = L((1, 0, 0, 2), (2, 1, 0, 2))
        assert sequential_intervals(parent_later, child)

    def test_deep_nesting_divergence_at_top(self):
        a = L((1, 0, 0, 2), (2, 0, 0, 2), (4, 0, 0, 2))
        b = L((1, 1, 0, 2), (3, 1, 0, 2), (5, 1, 0, 2))
        assert concurrent_intervals(a, b)


def test_judgment_symmetry_exhaustive():
    """Symmetry over a small exhaustive space of two-level labels."""
    labels = []
    for region in (1, 2):
        for slot in (0, 1):
            for bid in (0, 1):
                labels.append(L((region, slot, bid, 2)))
                labels.append(L((region, slot, bid, 2), (10 + region, 0, 0, 2)))
    for a in labels:
        for b in labels:
            assert sequential_intervals(a, b) == sequential_intervals(b, a)


def test_to_classic_folds_bid():
    lbl = L((1, 1, 2, 4))
    classic = to_classic(lbl)
    assert classic == (OSPair(1 + 2 * 4, 4),)


def test_interval_pair_validation():
    with pytest.raises(ValueError):
        IntervalPair(1, 2, 0, 2)  # slot >= span
    with pytest.raises(ValueError):
        IntervalPair(1, 0, -1, 2)
    with pytest.raises(ValueError):
        IntervalPair(1, 0, 0, 0)


@st.composite
def interval_labels(draw):
    depth = draw(st.integers(1, 3))
    pairs = []
    for lvl in range(depth):
        span = draw(st.integers(1, 3))
        pairs.append(
            (
                draw(st.integers(1, 4)) + 10 * lvl,
                draw(st.integers(0, span - 1)),
                draw(st.integers(0, 2)),
                span,
            )
        )
    return make_interval_label(*pairs)


@given(interval_labels(), interval_labels())
def test_property_symmetric(a, b):
    assert sequential_intervals(a, b) == sequential_intervals(b, a)


@given(interval_labels())
def test_property_reflexive(a):
    assert sequential_intervals(a, a)
