"""Classic offset-span labels (paper §II)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.osl.labels import (
    OSPair,
    after_barrier,
    after_join,
    concurrent_classic,
    fork,
    format_label,
    initial_label,
    is_prefix,
    parse_label,
    sequential_classic,
)


def test_paper_example_label():
    """The paper's worked example: [0,1][0,2][0,2] for Thread 3 of Fig. 2."""
    label = parse_label("[0,1][0,2][0,2]")
    assert len(label) == 3
    assert label[0] == OSPair(0, 1)
    assert format_label(label) == "[0,1][0,2][0,2]"


def test_fork_creates_siblings():
    root = initial_label()
    c0 = fork(root, 0, 2)
    c1 = fork(root, 1, 2)
    assert concurrent_classic(c0, c1)
    assert sequential_classic(root, c0)  # case 1: prefix
    assert sequential_classic(root, c1)


def test_join_orders_children_before_continuation():
    root = initial_label()
    children = [fork(root, i, 3) for i in range(3)]
    cont = after_join(root)
    for c in children:
        assert sequential_classic(c, cont)  # case 2 congruence


def test_two_successive_fork_joins_are_sequential():
    root = initial_label()
    gen1 = [fork(root, i, 2) for i in range(2)]
    cont = after_join(root)
    gen2 = [fork(cont, i, 2) for i in range(2)]
    for a in gen1:
        for b in gen2:
            assert sequential_classic(a, b), (a, b)


def test_barrier_advances_same_slot_only():
    root = initial_label()
    t0 = fork(root, 0, 2)
    t1 = fork(root, 1, 2)
    t0_after = after_barrier(t0)
    # Same slot across the barrier: ordered (case-2 congruence).
    assert sequential_classic(t0, t0_after)
    # Classic OSL alone cannot express cross-thread barrier ordering; that
    # is the role of the barrier-interval judgment (and why SWORD keeps bid
    # separate in its metadata).
    assert concurrent_classic(t1, t0_after)


def test_case2_requires_equal_spans():
    a = (OSPair(0, 2),)
    b = (OSPair(1, 3),)
    assert concurrent_classic(a, b)


def test_identical_labels_are_sequential():
    lbl = parse_label("[0,1][1,2]")
    assert sequential_classic(lbl, lbl)


def test_is_prefix():
    p = parse_label("[0,1]")
    q = parse_label("[0,1][0,2]")
    assert is_prefix(p, q)
    assert not is_prefix(q, p)
    assert not is_prefix(p, p)


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_label("0,1")


def test_pair_validation():
    with pytest.raises(ValueError):
        OSPair(0, 0)
    with pytest.raises(ValueError):
        OSPair(-1, 2)
    with pytest.raises(ValueError):
        fork(initial_label(), 2, 2)
    with pytest.raises(ValueError):
        after_join(())


def test_pair_slot_phase():
    assert OSPair(5, 2).slot == 1
    assert OSPair(5, 2).phase == 2


@st.composite
def labels(draw):
    depth = draw(st.integers(1, 4))
    pairs = []
    for _ in range(depth):
        span = draw(st.integers(1, 4))
        offset = draw(st.integers(0, 3 * span))
        pairs.append(OSPair(offset, span))
    return tuple(pairs)


@given(labels(), labels())
def test_judgment_is_symmetric(l1, l2):
    assert sequential_classic(l1, l2) == sequential_classic(l2, l1)


@given(labels())
def test_judgment_is_reflexive(lbl):
    assert sequential_classic(lbl, lbl)


@given(labels(), st.integers(0, 3))
def test_fork_children_concurrent_with_each_other(lbl, i):
    span = 4
    ci = fork(lbl, i, span)
    cj = fork(lbl, (i + 1) % span, span)
    assert concurrent_classic(ci, cj)
    assert sequential_classic(lbl, ci)
