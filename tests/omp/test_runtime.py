"""Simulated OpenMP runtime: regions, barriers, locks, nesting."""

import numpy as np
import pytest

from repro.common.config import RunConfig, SchedulerConfig
from repro.common.errors import DeadlockError, RuntimeModelError
from repro.omp import OpenMPRuntime, RecordingTool

from conftest import run_program


def test_parallel_region_runs_all_members():
    seen = []

    def program(m):
        def body(ctx):
            seen.append((ctx.tid, ctx.nthreads))
        m.parallel(body, nthreads=5)

    run_program(program)
    assert sorted(seen) == [(i, 5) for i in range(5)]


def test_master_is_member_zero_and_worker_pool_reused():
    gids = {}

    def program(m):
        def body(ctx, tag):
            gids.setdefault(tag, {})[ctx.tid] = ctx.gid
        m.parallel(body, "first", nthreads=4)
        m.parallel(body, "second", nthreads=4)

    rt = run_program(program)
    # The encountering (initial) thread is slot 0 in both regions.
    assert gids["first"][0] == rt.initial_thread.gid
    assert gids["second"][0] == rt.initial_thread.gid
    # Pool workers are reused across regions: same gid set.
    assert set(gids["first"].values()) == set(gids["second"].values())


def test_return_value_propagates():
    def program(m):
        return 42

    rt = OpenMPRuntime(RunConfig(nthreads=2))
    assert rt.run(program) == 42


def test_runtime_is_single_shot():
    rt = OpenMPRuntime(RunConfig(nthreads=2))
    rt.run(lambda m: None)
    with pytest.raises(RuntimeModelError):
        rt.run(lambda m: None)


def test_workload_exception_propagates():
    class Boom(Exception):
        pass

    def program(m):
        def body(ctx):
            if ctx.tid == 1:
                raise Boom()
        m.parallel(body, nthreads=3)

    with pytest.raises(Boom):
        run_program(program)


def test_exception_in_master_body_aborts_workers_at_barrier():
    class Boom(Exception):
        pass

    def program(m):
        def body(ctx):
            if ctx.tid == 0:
                raise Boom()
            ctx.barrier()  # workers block here; abort must wake them
        m.parallel(body, nthreads=4)

    with pytest.raises(Boom):
        run_program(program)


def test_barrier_all_arrive_before_any_departs():
    tool = RecordingTool()

    def program(m):
        def body(ctx):
            ctx.barrier()
        m.parallel(body, nthreads=6)

    run_program(program, tool=tool, nthreads=6)
    per_barrier = {}
    for e in tool.tape:
        if e.kind in ("barrier_arrive", "barrier_depart"):
            per_barrier.setdefault(e.bid if e.kind == "barrier_arrive" else e.bid - 1,
                                   []).append(e.kind)
    for bid, events in per_barrier.items():
        first_depart = events.index("barrier_depart")
        assert events[:first_depart].count("barrier_arrive") == 6, bid


def test_lock_mutual_exclusion_and_msid():
    def program(m):
        counter = m.alloc_scalar("c", np.int64)
        lock = m.new_lock("L")

        def body(ctx):
            for _ in range(20):
                with ctx.locked(lock):
                    v = ctx.read(counter, 0)
                    ctx.write(counter, 0, v + 1)
        m.parallel(body, nthreads=4)
        return m.data(counter)[0]

    rt = OpenMPRuntime(RunConfig(nthreads=4, scheduler=SchedulerConfig(seed=3)))
    assert rt.run(program) == 80


def test_release_unheld_lock_rejected():
    def program(m):
        lock = m.new_lock()

        def body(ctx):
            ctx.release(lock)
        m.parallel(body, nthreads=1)

    with pytest.raises(RuntimeModelError):
        run_program(program)


def test_relock_detected():
    def program(m):
        lock = m.new_lock()

        def body(ctx):
            ctx.acquire(lock)
            ctx.acquire(lock)
        m.parallel(body, nthreads=1)

    with pytest.raises(RuntimeModelError):
        run_program(program)


def test_deadlock_detected_not_hung():
    def program(m):
        a = m.new_lock("a")
        b = m.new_lock("b")

        def body(ctx):
            if ctx.tid == 0:
                ctx.acquire(a)
                ctx.yield_point()
                ctx.acquire(b)
            else:
                ctx.acquire(b)
                ctx.yield_point()
                ctx.acquire(a)
        m.parallel(body, nthreads=2)

    with pytest.raises(DeadlockError):
        run_program(program, seed=1)


def test_mismatched_barriers_deadlock():
    def program(m):
        def body(ctx):
            if ctx.tid == 0:
                ctx.barrier()
        m.parallel(body, nthreads=2)

    with pytest.raises(DeadlockError):
        run_program(program)


def test_nested_parallelism_levels_and_pids():
    tool = RecordingTool()

    def program(m):
        def inner(ctx):
            pass

        def outer(ctx):
            ctx.parallel(inner, nthreads=2)
        m.parallel(outer, nthreads=2)

    run_program(program, tool=tool)
    levels = {e.region: e.level for e in tool.tape if e.kind == "task_begin"}
    assert sorted(levels.values()) == [1, 2, 2]
    regions = {pid: r for pid, r in tool.regions.items()}
    inner_regions = [r for r in regions.values() if r.level == 2]
    assert len(inner_regions) == 2
    assert all(r.ppid == 1 for r in inner_regions)


def test_team_of_one():
    def program(m):
        x = m.alloc_scalar("x")

        def body(ctx):
            assert ctx.nthreads == 1
            ctx.write(x, 0, 1.0)
            ctx.barrier()
        m.parallel(body, nthreads=1)
        return m.data(x)[0]

    rt = OpenMPRuntime(RunConfig(nthreads=1))
    assert rt.run(program) == 1.0


def test_default_team_size_from_config():
    sizes = []

    def program(m):
        def body(ctx):
            sizes.append(ctx.nthreads)
        m.parallel(body)

    run_program(program, nthreads=6)
    assert sizes == [6] * 6


def test_barrier_intervals_advance_bid():
    tool = RecordingTool()

    def program(m):
        def body(ctx):
            ctx.barrier()
            ctx.barrier()
        m.parallel(body, nthreads=3)

    run_program(program, tool=tool, nthreads=3)
    departs = [e.bid for e in tool.tape if e.kind == "barrier_depart"]
    # Two explicit barriers + the implicit region-end barrier, 3 threads.
    assert sorted(departs) == [1, 1, 1, 2, 2, 2, 3, 3, 3]
