"""Scheduler determinism and policy behaviour."""

import pytest

from repro.common.config import RunConfig, SchedulerConfig
from repro.omp import OpenMPRuntime, RecordingTool


def event_signature(seed, policy="random", yield_every=0):
    """The global event order of a fixed mildly racy program."""
    tool = RecordingTool()
    rt = OpenMPRuntime(
        RunConfig(
            nthreads=4,
            scheduler=SchedulerConfig(
                seed=seed, policy=policy, yield_every=yield_every
            ),
        ),
        tool=tool,
    )

    def program(m):
        a = m.alloc_array("a", 32)
        lock = m.new_lock()

        def body(ctx):
            for i in ctx.for_range(32, schedule="dynamic", chunk=2):
                ctx.write(a, i, float(i))
            with ctx.locked(lock):
                ctx.read(a, 0)
        m.parallel(body)

    rt.run(program)
    return [(e.kind, e.gid, e.bid) for e in tool.tape]


def test_same_seed_same_interleaving():
    assert event_signature(7) == event_signature(7)


def test_different_seeds_diverge():
    signatures = {tuple(event_signature(s)) for s in range(6)}
    assert len(signatures) > 1


def test_round_robin_is_deterministic_without_seed_sensitivity():
    a = event_signature(1, policy="round-robin")
    b = event_signature(99, policy="round-robin")
    assert a == b


def _kind_counts(signature):
    from collections import Counter

    return Counter(kind for kind, _gid, _bid in signature)


def test_yield_every_changes_interleaving_but_not_event_counts():
    fine = event_signature(3, yield_every=2)
    coarse = event_signature(3, yield_every=0)
    assert fine != coarse
    # The same work happens either way (the dynamic schedule may assign
    # iterations to different threads, so compare kind counts, not gids).
    assert _kind_counts(fine) == _kind_counts(coarse)


def test_event_counts_stable_across_seeds():
    base = _kind_counts(event_signature(0))
    for seed in (1, 2, 3):
        assert _kind_counts(event_signature(seed)) == base
