"""ThreadContext surface: worksharing, single/master/sections, accesses."""

import numpy as np
import pytest

from repro.common.errors import RuntimeModelError
from repro.common.events import FLAG_ATOMIC
from repro.omp import OpenMPRuntime, RecordingTool

from conftest import run_program


def collect_iters(schedule, n, nthreads, chunk=None, seed=0):
    per_thread: dict[int, list[int]] = {}

    def program(m):
        def body(ctx):
            per_thread[ctx.tid] = list(
                ctx.for_range(n, schedule=schedule, chunk=chunk)
            )
        m.parallel(body, nthreads=nthreads)

    run_program(program, nthreads=nthreads, seed=seed)
    return per_thread


class TestForRange:
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    def test_every_iteration_exactly_once(self, schedule):
        per_thread = collect_iters(schedule, 37, 4)
        merged = sorted(i for its in per_thread.values() for i in its)
        assert merged == list(range(37))

    def test_static_default_is_contiguous(self):
        per_thread = collect_iters("static", 40, 4)
        for tid, its in per_thread.items():
            assert its == list(range(tid * 10, (tid + 1) * 10))

    def test_static_chunked_round_robin(self):
        per_thread = collect_iters("static", 16, 2, chunk=2)
        assert per_thread[0] == [0, 1, 4, 5, 8, 9, 12, 13]
        assert per_thread[1] == [2, 3, 6, 7, 10, 11, 14, 15]

    def test_dynamic_distributes_across_threads(self):
        per_thread = collect_iters("dynamic", 64, 4, chunk=4, seed=5)
        working = [tid for tid, its in per_thread.items() if its]
        assert len(working) >= 2  # someone besides the master got chunks

    def test_static_chunk_bounds(self):
        bounds = {}

        def program(m):
            def body(ctx):
                bounds[ctx.tid] = ctx.static_chunk(10)
            m.parallel(body, nthreads=3)

        run_program(program, nthreads=3)
        assert bounds == {0: (0, 3), 1: (3, 6), 2: (6, 10)}

    def test_zero_iterations(self):
        per_thread = collect_iters("static", 0, 3)
        assert all(its == [] for its in per_thread.values())

    def test_unknown_schedule_rejected(self):
        def program(m):
            def body(ctx):
                list(ctx.for_range(4, schedule="magic"))
            m.parallel(body, nthreads=1)

        with pytest.raises(RuntimeModelError):
            run_program(program)

    def test_nowait_omits_loop_barrier(self):
        tool = RecordingTool()

        def program(m):
            def body(ctx):
                for _ in ctx.for_range(8, nowait=True):
                    pass
            m.parallel(body, nthreads=2)

        run_program(program, tool=tool, nthreads=2)
        arrivals = [e for e in tool.tape if e.kind == "barrier_arrive"]
        assert len(arrivals) == 2  # only the implicit region-end barrier


class TestSingleMasterSections:
    def test_single_claimed_by_exactly_one(self):
        claims = []

        def program(m):
            def body(ctx):
                with ctx.single() as mine:
                    if mine:
                        claims.append(ctx.tid)
                with ctx.single() as mine:
                    if mine:
                        claims.append(ctx.tid)
            m.parallel(body, nthreads=4)

        run_program(program)
        assert len(claims) == 2

    def test_master_only_on_slot_zero(self):
        masters = []

        def program(m):
            def body(ctx):
                if ctx.master():
                    masters.append(ctx.tid)
            m.parallel(body, nthreads=4)

        run_program(program)
        assert masters == [0]

    def test_sections_each_body_once(self):
        runs = []

        def program(m):
            def body(ctx):
                ctx.sections([
                    lambda c: runs.append("a"),
                    lambda c: runs.append("b"),
                    lambda c: runs.append("c"),
                ])
            m.parallel(body, nthreads=2)

        run_program(program)
        assert sorted(runs) == ["a", "b", "c"]


class TestAccessEmission:
    def test_scalar_ops_do_real_work_and_emit(self):
        tool = RecordingTool()

        def program(m):
            a = m.alloc_array("a", 8)

            def body(ctx):
                ctx.write(a, ctx.tid, float(ctx.tid))
                assert ctx.read(a, ctx.tid) == float(ctx.tid)
            m.parallel(body, nthreads=4)
            return m.data(a).copy()

        run_program(program, tool=tool)
        accs = tool.accesses()
        assert len(accs) == 8
        writes = [e for e in accs if e.access.is_write]
        assert len(writes) == 4

    def test_slice_ops_emit_one_range_event(self):
        tool = RecordingTool()

        def program(m):
            a = m.alloc_array("a", 100)

            def body(ctx):
                lo, hi = ctx.static_chunk(100)
                ctx.write_slice(a, lo, hi, np.arange(lo, hi, dtype=float))
                vals = ctx.read_slice(a, lo, hi, step=2)
                assert vals[0] == lo
            m.parallel(body, nthreads=2)

        run_program(program, tool=tool, nthreads=2)
        accs = [e.access for e in tool.accesses()]
        assert len(accs) == 4  # one write + one read range per thread
        w = [a for a in accs if a.is_write][0]
        assert w.count == 50 and w.stride == 8
        r = [a for a in accs if not a.is_write][0]
        assert r.count == 25 and r.stride == 16

    def test_elems_ops_emit_per_index(self):
        tool = RecordingTool()

        def program(m):
            a = m.alloc_array("a", 16)

            def body(ctx):
                ctx.write_elems(a, [1, 5, 9], 2.0)
                got = ctx.read_elems(a, [1, 5])
                assert list(got) == [2.0, 2.0]
            m.parallel(body, nthreads=1)

        run_program(program, tool=tool)
        accs = tool.accesses()
        assert len(accs) == 5

    def test_atomics_flagged(self):
        tool = RecordingTool()

        def program(m):
            c = m.alloc_scalar("c", np.int64)

            def body(ctx):
                ctx.atomic_add(c, 0, 1)
                ctx.atomic_read(c, 0)
                ctx.atomic_write(c, 0, 5)
            m.parallel(body, nthreads=2)
            return m.data(c)[0]

        rt = run_program(program, tool=tool)
        accs = [e.access for e in tool.accesses()]
        assert len(accs) == 6
        assert all(a.is_atomic for a in accs)

    def test_msid_tracks_held_locks(self):
        tool = RecordingTool()

        def program(m):
            a = m.alloc_scalar("a")
            lock = m.new_lock("L")

            def body(ctx):
                ctx.write(a, 0, 1.0)            # no locks
                with ctx.locked(lock):
                    ctx.write(a, 0, 2.0)        # {L}
                with ctx.critical("x"):
                    with ctx.locked(lock):
                        ctx.write(a, 0, 3.0)    # {L, critical:x}
            m.parallel(body, nthreads=1)

        rt = run_program(program, tool=tool)
        msids = [e.access.msid for e in tool.accesses()]
        sets = [rt.mutexsets.get(m) for m in msids]
        assert len(sets[0]) == 0
        assert len(sets[1]) == 1
        assert len(sets[2]) == 2

    def test_slice_step_validation(self):
        def program(m):
            a = m.alloc_array("a", 4)

            def body(ctx):
                ctx.read_slice(a, 0, 4, step=0)
            m.parallel(body, nthreads=1)

        with pytest.raises(RuntimeModelError):
            run_program(program)

    def test_reduce_add_is_lock_protected(self):
        tool = RecordingTool()

        def program(m):
            total = m.alloc_scalar("t")

            def body(ctx):
                ctx.reduce_add(total, 0, 1.0)
            m.parallel(body, nthreads=4)
            return m.data(total)[0]

        rt = run_program(program, tool=tool)
        accs = [e.access for e in tool.accesses()]
        assert all(len(rt.mutexsets.get(a.msid)) == 1 for a in accs)
