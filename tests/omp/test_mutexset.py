"""Mutex-set interning table."""

import pytest

from repro.omp.mutexset import EMPTY_MSID, MutexSetTable


def test_empty_set_is_msid_zero():
    t = MutexSetTable()
    assert t.intern(frozenset()) == EMPTY_MSID
    assert t.get(EMPTY_MSID) == frozenset()


def test_interning_is_stable():
    t = MutexSetTable()
    a = t.intern(frozenset({1, 2}))
    b = t.intern(frozenset({2, 1}))
    assert a == b
    assert t.get(a) == frozenset({1, 2})
    assert len(t) == 2  # empty + {1,2}


def test_unknown_msid_raises():
    t = MutexSetTable()
    with pytest.raises(KeyError):
        t.get(99)


def test_disjointness():
    t = MutexSetTable()
    ab = t.intern(frozenset({1, 2}))
    bc = t.intern(frozenset({2, 3}))
    cd = t.intern(frozenset({3, 4}))
    assert not t.disjoint(ab, bc)
    assert t.disjoint(ab, cd)
    assert not t.disjoint(ab, ab)  # same non-empty set shares everything
    assert t.disjoint(EMPTY_MSID, ab)
    assert t.disjoint(ab, EMPTY_MSID)
    assert t.disjoint(EMPTY_MSID, EMPTY_MSID)


def test_save_load_roundtrip(tmp_path):
    t = MutexSetTable()
    ids = [t.intern(frozenset(range(i))) for i in range(5)]
    path = tmp_path / "mutexsets.json"
    t.save(path)
    loaded = MutexSetTable.load(path)
    for i, msid in enumerate(ids):
        assert loaded.get(msid) == frozenset(range(i))
    # New interning continues past the loaded ids.
    fresh = loaded.intern(frozenset({100}))
    assert fresh not in ids
