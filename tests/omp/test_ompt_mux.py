"""ToolMux must fan out every callback — including newly added ones."""

import inspect

from repro.omp import OmptTool, OpenMPRuntime, ToolMux
from repro.common.config import RunConfig, SchedulerConfig


class _CallRecorder(OmptTool):
    """Record every callback name invoked on this tool."""

    def __init__(self) -> None:
        self.calls: list[str] = []

    def __getattribute__(self, name):
        if name.startswith("on_"):
            calls = object.__getattribute__(self, "calls")

            def _record(*args, **kwargs):
                calls.append(name)

            return _record
        return object.__getattribute__(self, name)


def test_mux_overrides_every_callback():
    """Every ``on_*`` method of OmptTool must be overridden by ToolMux —
    a missing override silently drops the callback for all attached tools."""
    base_callbacks = {
        name for name, _ in inspect.getmembers(OmptTool, inspect.isfunction)
        if name.startswith("on_")
    }
    mux_own = set(vars(ToolMux))
    missing = base_callbacks - mux_own
    assert not missing, f"ToolMux does not fan out: {sorted(missing)}"


def test_mux_delivers_to_all_tools_in_order():
    a, b = _CallRecorder(), _CallRecorder()
    rt = OpenMPRuntime(
        RunConfig(nthreads=2, scheduler=SchedulerConfig(seed=0)),
        tool=ToolMux([a, b]),
    )

    def program(m):
        x = m.alloc_scalar("x")
        lock = m.new_lock()

        def child(ctx):
            ctx.write(x, 0, 1.0)

        def body(ctx):
            with ctx.locked(lock):
                ctx.read(x, 0)
            if ctx.tid == 0:
                ctx.task(child)
                ctx.taskwait()
            ctx.barrier()
        m.parallel(body)

    rt.run(program)
    assert a.calls == b.calls
    for expected in (
        "on_run_begin", "on_parallel_begin", "on_implicit_task_begin",
        "on_access", "on_mutex_acquired", "on_mutex_released",
        "on_task_create", "on_task_begin", "on_task_end", "on_taskwait",
        "on_barrier_arrive", "on_barrier_depart", "on_implicit_task_end",
        "on_parallel_end", "on_run_end",
    ):
        assert expected in a.calls, f"{expected} never delivered"
