"""End-to-end property testing on randomly generated model programs.

For every generated program and schedule:

* the streaming interval-tree offline analysis reports exactly the race
  site pairs the exhaustive O(n^2) oracle derives from the recorded
  execution (soundness and completeness w.r.t. the semantics);
* the happens-before baseline never reports a pair SWORD does not
  (an HB-unordered conflict is necessarily interval-concurrent and
  lockset-disjoint... lock edges order common-lock accesses), i.e.
  ARCHER ⊆ SWORD on the same seed.

Programs draw from: scalar/bulk reads and writes, atomics, two locks,
optional barriers between phases, and optional nested regions — the whole
modelled construct surface.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.archer import ArcherTool
from repro.common.config import ArcherConfig, RunConfig, SchedulerConfig
from repro.common.sourceloc import pc_of
from repro.omp import OpenMPRuntime

from conftest import sword_and_oracle

N_ARRAYS = 2
ARRAY_LEN = 6
MAX_THREADS = 3


@dataclass(frozen=True)
class Op:
    kind: str       # "r" | "w" | "a" | "slice_r" | "slice_w"
    array: int
    index: int
    lock: int       # 0 = none, 1..2 = lock id
    site: int       # pc discriminator


op_strategy = st.builds(
    Op,
    kind=st.sampled_from(["r", "w", "a", "slice_r", "slice_w"]),
    array=st.integers(0, N_ARRAYS - 1),
    index=st.integers(0, ARRAY_LEN - 1),
    lock=st.integers(0, 2),
    site=st.integers(0, 9),
)


@st.composite
def program_descs(draw):
    nthreads = draw(st.integers(2, MAX_THREADS))
    n_phases = draw(st.integers(1, 3))
    phases = []
    for _ in range(n_phases):
        per_thread = [
            draw(st.lists(op_strategy, max_size=4)) for _ in range(nthreads)
        ]
        phases.append(per_thread)
    nested = draw(st.booleans())
    return nthreads, phases, nested


def build_program(desc):
    nthreads, phases, nested = desc

    def program(m):
        import numpy as np

        arrays = [
            m.alloc_array(f"arr{k}", ARRAY_LEN, fill=1) for k in range(N_ARRAYS)
        ]
        locks = {1: m.new_lock("l1"), 2: m.new_lock("l2")}

        def run_op(ctx, op: Op):
            arr = arrays[op.array]
            pc = pc_of("gen.c", op.site * 10 + {"r": 0, "w": 1, "a": 2,
                                                "slice_r": 3, "slice_w": 4}[op.kind])

            def do():
                if op.kind == "r":
                    ctx.read(arr, op.index, pc=pc)
                elif op.kind == "w":
                    ctx.write(arr, op.index, 2.0, pc=pc)
                elif op.kind == "a":
                    ctx.atomic_add(arr, op.index, 1.0, pc=pc)
                elif op.kind == "slice_r":
                    ctx.read_slice(arr, op.index, ARRAY_LEN, step=2, pc=pc)
                else:
                    n = len(range(op.index, ARRAY_LEN, 2))
                    ctx.write_slice(arr, op.index, ARRAY_LEN,
                                    np.zeros(n), step=2, pc=pc)

            if op.lock:
                with ctx.locked(locks[op.lock]):
                    do()
            else:
                do()

        def body(ctx):
            for phase_idx, per_thread in enumerate(phases):
                for op in per_thread[ctx.tid]:
                    run_op(ctx, op)
                ctx.barrier()
            if nested and ctx.tid == 0:
                def inner(ictx):
                    run_op(ictx, Op("w", 0, 0, 0, 9))
                ctx.parallel(inner, nthreads=2)

        m.parallel(body, nthreads=nthreads)

    return program


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(desc=program_descs(), seed=st.integers(0, 3))
def test_sword_matches_oracle_and_archer_is_subset(desc, seed):
    program = build_program(desc)
    nthreads = desc[0]
    tmp = tempfile.mkdtemp(prefix="e2e-")
    try:
        races, oracle, _rec, _rt = sword_and_oracle(
            program, tmp, nthreads=nthreads, seed=seed
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    assert races.pc_pairs() == oracle.pc_pairs()

    archer = ArcherTool(ArcherConfig())
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
        tool=archer,
    )
    rt.run(program)
    assert archer.races.pc_pairs() <= races.pc_pairs(), (
        f"archer-only pairs: {archer.races.pc_pairs() - races.pc_pairs()}"
    )


@st.composite
def task_program_descs(draw):
    """Programs mixing implicit accesses, locks, tasks, and taskwaits."""
    nthreads = draw(st.integers(2, MAX_THREADS))
    per_thread = []
    for _ in range(nthreads):
        ops = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(
                        ["op", "spawn_w", "spawn_r", "spawn_locked_w", "wait"]
                    ),
                    op_strategy,
                ),
                max_size=5,
            )
        )
        per_thread.append(ops)
    return nthreads, per_thread


def build_task_program(desc):
    nthreads, per_thread = desc

    def program(m):
        arrays = [
            m.alloc_array(f"arr{k}", ARRAY_LEN, fill=1) for k in range(N_ARRAYS)
        ]
        locks = {1: m.new_lock("l1"), 2: m.new_lock("l2")}

        def access(ctx, op: Op, *, write: bool, lock: int):
            arr = arrays[op.array]
            pc = pc_of("gen-t.c", op.site * 20 + (1 if write else 0) + lock * 5)

            def do():
                if write:
                    ctx.write(arr, op.index, 3.0, pc=pc)
                else:
                    ctx.read(arr, op.index, pc=pc)

            if lock:
                with ctx.locked(locks[lock]):
                    do()
            else:
                do()

        def spawned(ctx, op: Op, write: bool, lock: int):
            access(ctx, op, write=write, lock=lock)

        def body(ctx):
            for kind, op in per_thread[ctx.tid]:
                if kind == "op":
                    access(ctx, op, write=op.kind in ("w", "slice_w", "a"),
                           lock=op.lock)
                elif kind == "spawn_w":
                    ctx.task(spawned, op, True, 0)
                elif kind == "spawn_r":
                    ctx.task(spawned, op, False, 0)
                elif kind == "spawn_locked_w":
                    ctx.task(spawned, op, True, op.lock or 1)
                else:
                    ctx.taskwait()

        m.parallel(body, nthreads=nthreads)

    return program


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(desc=task_program_descs(), seed=st.integers(0, 3))
def test_task_programs_sword_matches_oracle(desc, seed):
    """Tasks + locks + taskwaits across threads: analyzer == oracle."""
    program = build_task_program(desc)
    nthreads = desc[0]
    tmp = tempfile.mkdtemp(prefix="e2e-task-")
    try:
        races, oracle, _rec, _rt = sword_and_oracle(
            program, tmp, nthreads=nthreads, seed=seed
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    assert races.pc_pairs() == oracle.pc_pairs()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(desc=program_descs())
def test_sword_detection_is_schedule_independent(desc):
    """SWORD's verdict never depends on the interleaving (paper §II claim,
    for programs without data-dependent control flow)."""
    program_factory = lambda: build_program(desc)
    nthreads = desc[0]
    verdicts = set()
    for seed in (0, 1, 2):
        tmp = tempfile.mkdtemp(prefix="sched-")
        try:
            races, _oracle, _rec, _rt = sword_and_oracle(
                program_factory(), tmp, nthreads=nthreads, seed=seed
            )
            verdicts.add(frozenset(races.pc_pairs()))
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    assert len(verdicts) == 1, f"schedule-dependent verdicts: {verdicts}"
