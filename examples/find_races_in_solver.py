#!/usr/bin/env python3
"""Check an HPC solver for data races with both tools.

Runs the HPCCG model (a conjugate-gradient solver carrying the paper's
documented write-write race on a shared residual variable) under ARCHER and
under SWORD, then compares what each reports — the §IV-C exercise on one
benchmark.

Run:  python examples/find_races_in_solver.py
"""

from repro.harness import driver, fmt_bytes, fmt_seconds
from repro.workloads import REGISTRY


def main():
    hpccg = REGISTRY.get("hpccg")
    print(f"workload: {hpccg.name} — {hpccg.description}")

    for tool_name in ("baseline", "archer", "sword"):
        result = driver(tool_name).run(hpccg, nthreads=8, seed=0)
        line = (
            f"{tool_name:10s} time={fmt_seconds(result.dynamic_seconds):>9s} "
            f"tool-mem={fmt_bytes(result.tool_bytes):>10s}"
        )
        if tool_name != "baseline":
            line += f" races={result.race_count}"
        if tool_name == "sword":
            line += f" offline={fmt_seconds(result.offline_seconds)}"
        print(line)

    sword = driver("sword").run(hpccg, nthreads=8, seed=0)
    print("\nrace reports:")
    for race in sword.races:
        print(" ", race.describe())
    print("\nThe race: every thread stores the same residual into a shared")
    print("variable — looks harmless, is undefined behaviour (paper §IV-C).")


if __name__ == "__main__":
    main()
