#!/usr/bin/env python3
"""Crash-tolerant traces: inject faults, then salvage the analysis.

Walks the durability loop end to end:

1. collect a durable trace (CRC-framed v2 chunks, checksummed metadata
   rows, region journal) from a racy workload;
2. analyze it strictly — the reference race set;
3. mutilate the trace with a deterministic, seeded fault plan
   (truncations, bit flips, torn metadata lines);
4. watch strict mode fail fast with a precise error naming thread,
   block, and byte offset;
5. salvage the same trace: the analysis completes, reports a *subset*
   of the reference races, and itemises the loss in an IntegrityReport;
6. run the kill-point sweep — the property test behind the
   "kill-anywhere" guarantee.

Run:  python examples/fault_injection_salvage.py
"""

import json
import shutil
import tempfile
from pathlib import Path

import repro.api as sword
from repro.common.errors import TraceFormatError
from repro.faults import FaultPlan, kill_sweep
from repro.faults.harness import collect_trace

WORKLOAD = "antidep1-orig-yes"


def main():
    root = Path(tempfile.mkdtemp(prefix="sword-faults-"))
    trace = root / "trace"
    try:
        # 1. A durable trace: small buffers so several chunks flush.
        collect_trace(WORKLOAD, trace, nthreads=2, seed=0, buffer_events=64)

        # 2. The fault-free reference.
        reference = sword.analyze(trace)
        ref_pairs = reference.races.pc_pairs()
        print(f"clean trace: {len(reference.races)} race(s)")

        # 3. A deterministic fault plan (same seed => same mutations).
        plan = FaultPlan.random(trace, seed=7, actions=3)
        for description in plan.apply(trace):
            print(f"injected: {description}")

        # 4. Strict mode refuses the damaged trace, precisely.
        try:
            sword.analyze(trace)
        except TraceFormatError as exc:
            print(f"strict: {exc}")

        # 5. Salvage completes and accounts for every loss.
        result = sword.analyze(trace, integrity="salvage")
        report = result.integrity
        print(f"salvage: {len(result.races)} race(s) recovered")
        print(report.summary())
        assert result.races.pc_pairs() <= ref_pairs, "salvage must under-report"
        print(json.dumps(report.to_json(), indent=2)[:400] + " ...")

        # 6. The kill-anywhere sweep: truncate at every interesting byte.
        sweep = kill_sweep(
            WORKLOAD, nthreads=2, seed=0, buffer_events=64, max_points=8
        )
        print(sweep.summary())
        assert sweep.ok, "salvage crashed or over-reported at a kill point"
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
