#!/usr/bin/env python3
"""Quickstart: find a data race in a model OpenMP program with SWORD.

Walks the full pipeline on a 20-line program:

1. write a model program against the simulated OpenMP API;
2. run it with the SWORD online tool attached (bounded per-thread buffers,
   compressed logs, Table-I metadata);
3. run the offline analysis on the trace directory;
4. print the race reports with resolved source locations.

Run:  python examples/quickstart.py
"""

import tempfile

import repro.api as sword
from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.common.sourceloc import pc_of
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool

# Label the two access sites like compiler debug info would.
PC_WRITE = pc_of("mycode.c", 12, "update")
PC_READ = pc_of("mycode.c", 15, "consume")


def program(master):
    """One parallel region: thread 0 writes a[0], everyone reads it."""
    a = master.alloc_array("a", 64)

    def body(ctx):
        if ctx.tid == 0:
            ctx.write(a, 0, 42.0, pc=PC_WRITE)  # racy write
        value = ctx.read(a, 0, pc=PC_READ)      # racy read
        ctx.barrier()
        # After the barrier: safe, disjoint bulk writes.
        lo, hi = ctx.static_chunk(len(a))
        ctx.write_slice(a, lo, hi, value)

    master.parallel(body)


def main():
    trace_dir = tempfile.mkdtemp(prefix="sword-quickstart-")

    # Online phase: run the program with the SWORD collector attached.
    runtime = OpenMPRuntime(
        RunConfig(nthreads=4, scheduler=SchedulerConfig(seed=1)),
        tool=SwordTool(SwordConfig(log_dir=trace_dir)),
    )
    runtime.run(program)
    print(f"trace collected in {trace_dir}")

    # Offline phase: reconstruct concurrency, build interval trees, solve
    # overlaps, report races.
    result = sword.analyze(trace_dir)
    print(f"analysis: {result.stats.intervals} intervals, "
          f"{result.stats.concurrent_pairs} concurrent pairs, "
          f"{result.stats.tree_nodes} tree nodes")
    print(f"races found: {result.race_count}")
    for race in result.races:
        print(" ", race.describe())


if __name__ == "__main__":
    main()
