#!/usr/bin/env python3
"""The headline result: bounded memory vs proportional shadow memory.

Sweeps the AMG2013 model's grid size on a simulated 32 GB node.  ARCHER's
shadow cells grow with the application footprint (5-7x) until the node OOMs
at 40^3; SWORD's overhead stays at ~3.3 MB per thread no matter how big the
application gets, completes every size, and still reports the 10 races
ARCHER's eviction loses (paper Table IV / Figure 8).

Run:  python examples/memory_bounded_analysis.py
"""

from repro.harness import driver, fmt_bytes
from repro.workloads import REGISTRY


def main():
    print(f"{'grid':>6s} {'tool':>10s} {'app memory':>12s} "
          f"{'tool memory':>12s} {'status':>8s} {'races':>6s}")
    for size in (10, 20, 30, 40):
        workload = REGISTRY.get(f"amg2013_{size}")
        for tool_name in ("archer", "sword"):
            result = driver(tool_name).run(workload, nthreads=8, seed=0)
            status = "OOM" if result.oom else "ok"
            races = "-" if result.oom else str(result.race_count)
            print(
                f"{size:>4d}^3 {tool_name:>10s} "
                f"{fmt_bytes(result.app_bytes):>12s} "
                f"{fmt_bytes(result.tool_bytes):>12s} "
                f"{status:>8s} {races:>6s}"
            )
    print("\nARCHER's footprint tracks the application and dies at 40^3;")
    print("SWORD's N x 3.3 MB bound never moves, and it finds 14 races to")
    print("ARCHER's 4 (shadow-cell eviction hides the other 10).")


if __name__ == "__main__":
    main()
