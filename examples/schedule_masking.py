#!/usr/bin/env python3
"""Figure 1 live: the same racy program, caught or masked by the schedule.

A happens-before checker's verdict depends on which thread reaches its
critical section first: one interleaving leaves the unlocked write
concurrent (race reported), the other threads the lock edge between the
conflicting accesses (race silently masked).  SWORD decides from the
barrier-interval structure and mutex sets, so the schedule cannot hide the
race from it.

Run:  python examples/schedule_masking.py
"""

from repro.harness.experiments.hb_masking import run


def main():
    table = run(seeds=range(16))
    print(table.render())
    archer_hits = sum(1 for row in table.rows if row[1] > 0)
    masked = sum(1 for row in table.rows if row[1] == 0)
    print(f"\narcher: detected under {archer_hits}/16 schedules, "
          f"masked under {masked}/16")
    print("sword:  detected under 16/16 schedules")


if __name__ == "__main__":
    main()
