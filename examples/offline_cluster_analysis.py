#!/usr/bin/env python3
"""Distributed offline analysis: serial OA vs multi-worker MT.

The paper distributes SWORD's offline phase across cluster nodes (Table
III's MT column): the interval-pair comparison plan is partitioned and each
worker rebuilds only the trees it needs from the shared trace directory.
This example collects one larger trace, then runs the offline analysis
serially and with a process pool, verifying both report identical races.

Run:  python examples/offline_cluster_analysis.py
"""

import tempfile
import time

import repro.api as sword
from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool
from repro.workloads import REGISTRY


def main():
    trace_dir = tempfile.mkdtemp(prefix="sword-cluster-")
    workload = REGISTRY.get("amg2013_10")

    print("collecting trace (amg2013 at 10^3, 8 threads)...")
    runtime = OpenMPRuntime(
        RunConfig(nthreads=8, scheduler=SchedulerConfig(seed=0)),
        tool=SwordTool(SwordConfig(log_dir=trace_dir)),
    )
    runtime.run(lambda m: workload.run_program(m))

    t0 = time.perf_counter()
    serial = sword.analyze(trace_dir, mode="serial")
    serial_secs = time.perf_counter() - t0
    print(f"serial OA: {serial.race_count} races in {serial_secs:.2f}s "
          f"({serial.stats.concurrent_pairs} concurrent interval pairs)")

    t1 = time.perf_counter()
    parallel = sword.analyze(
        trace_dir, mode="parallel", options=sword.AnalysisOptions(workers=4)
    )
    mt_secs = time.perf_counter() - t1
    print(f"MT (4 workers): {parallel.race_count} races in {mt_secs:.2f}s")

    assert serial.races.pc_pairs() == parallel.races.pc_pairs(), \
        "distributed analysis must agree with serial"
    print("serial and distributed analyses agree.")
    for race in serial.races:
        print(" ", race.describe())


if __name__ == "__main__":
    main()
